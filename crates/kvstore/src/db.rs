//! The database façade: commit path, read path, stalls, recovery.

use crate::batch::{BatchOp, WriteBatch};
use crate::compaction;
#[cfg(test)]
use crate::compaction::CompactionJob;
use crate::memtable::MemTable;
use crate::sstable::{merge_runs, SsTable};
use crate::stats::{DbStats, DbStatsCell};
use crate::wal::Wal;
use crate::{Key, Value};
use afc_common::{AfcError, Result, KIB, MIB};
use afc_device::{BlockDev, IoReq, StreamId};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Tuning knobs for the store.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Freeze the active memtable at this size.
    pub memtable_bytes: u64,
    /// Start L0→L1 compaction at this many L0 tables.
    pub l0_compact_threshold: usize,
    /// Stall writers at this many L0 tables.
    pub l0_stall_threshold: usize,
    /// Stall writers at this many frozen memtables.
    pub max_imm: usize,
    /// Device region reserved for the WAL.
    pub wal_region: u64,
    /// Async commits group into device writes of this size.
    pub group_commit_bytes: u64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            memtable_bytes: MIB,
            l0_compact_threshold: 4,
            l0_stall_threshold: 12,
            max_imm: 2,
            wal_region: 64 * MIB,
            group_commit_bytes: 32 * KIB,
        }
    }
}

/// Commit durability options.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Force the WAL record to the device before returning.
    pub sync: bool,
}

impl WriteOptions {
    /// Synchronous commit.
    pub fn sync() -> Self {
        WriteOptions { sync: true }
    }

    /// Asynchronous (group-committed) commit.
    pub fn async_() -> Self {
        WriteOptions { sync: false }
    }
}

pub(crate) struct State {
    pub(crate) mem: MemTable,
    pub(crate) imms: VecDeque<Arc<MemTable>>,
    pub(crate) freeze_marks: VecDeque<u64>,
    pub(crate) l0: Vec<Arc<SsTable>>,
    pub(crate) l1: Option<Arc<SsTable>>,
    pub(crate) shutdown: bool,
}

pub(crate) struct Inner {
    pub(crate) cfg: DbConfig,
    pub(crate) dev: Arc<dyn BlockDev>,
    pub(crate) state: Mutex<State>,
    pub(crate) work_cv: Condvar,
    pub(crate) stall_cv: Condvar,
    pub(crate) commit: Mutex<Wal>,
    pub(crate) stats: DbStatsCell,
    pub(crate) table_seq: AtomicU64,
    pub(crate) data_base: u64,
    pub(crate) data_cursor: AtomicU64,
}

impl Inner {
    /// Charge a device write of `bytes` in ≤1 MiB chunks within the data
    /// region (ring allocation; tables live in memory, the device only
    /// models timing and byte counts).
    pub(crate) fn charge_table_write(&self, bytes: u64) -> Result<()> {
        let region = self.dev.capacity().saturating_sub(self.data_base).max(MIB);
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(MIB);
            let off =
                self.data_cursor.fetch_add(chunk, Ordering::Relaxed) % (region - chunk).max(1);
            self.dev.submit(IoReq::write_stream(
                self.data_base + off,
                chunk as u32,
                StreamId::KvCompaction,
            ))?;
            remaining -= chunk;
        }
        Ok(())
    }

    /// Charge a device read of `bytes` in ≤1 MiB chunks.
    pub(crate) fn charge_table_read(&self, bytes: u64) -> Result<()> {
        let region = self.dev.capacity().saturating_sub(self.data_base).max(MIB);
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(MIB);
            let off = self.data_cursor.load(Ordering::Relaxed) % (region - chunk).max(1);
            self.dev
                .submit(IoReq::read(self.data_base + off, chunk as u32))?;
            remaining -= chunk;
        }
        Ok(())
    }
}

/// An LSM key-value store over a [`BlockDev`] timing model.
///
/// See the crate docs for the behaviours modeled. The public API mirrors the
/// subset of LevelDB that Ceph's filestore uses: point get, batch write,
/// prefix/range scan, and explicit flush.
pub struct Db {
    inner: Arc<Inner>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Db {
    /// Open a store on `dev` with `cfg`. Fails if the background
    /// compaction worker cannot be spawned.
    pub fn open(dev: Arc<dyn BlockDev>, cfg: DbConfig) -> Result<Self> {
        let wal = Wal::new(Arc::clone(&dev), cfg.wal_region);
        let data_base = cfg.wal_region.min(dev.capacity() / 2);
        let inner = Arc::new(Inner {
            cfg,
            dev,
            state: Mutex::new(State {
                mem: MemTable::new(),
                imms: VecDeque::new(),
                freeze_marks: VecDeque::new(),
                l0: Vec::new(),
                l1: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            stall_cv: Condvar::new(),
            commit: Mutex::new(wal),
            stats: DbStatsCell::default(),
            table_seq: AtomicU64::new(1),
            data_base,
            data_cursor: AtomicU64::new(0),
        });
        let worker = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("kv-compact".into())
                .spawn(move || compaction::run(inner))
                .map_err(|e| AfcError::Io(format!("spawn compaction thread: {e}")))?
        };
        Ok(Db {
            inner,
            worker: Some(worker),
        })
    }

    /// Open with default config.
    pub fn open_default(dev: Arc<dyn BlockDev>) -> Result<Self> {
        Self::open(dev, DbConfig::default())
    }

    fn stall_wait(&self) -> Result<()> {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        while st.imms.len() >= inner.cfg.max_imm || st.l0.len() >= inner.cfg.l0_stall_threshold {
            if st.shutdown {
                return Err(AfcError::ShutDown("kvstore".into()));
            }
            inner.stats.stalls.inc();
            let t0 = Instant::now();
            inner.work_cv.notify_one();
            inner.stall_cv.wait(&mut st);
            inner.stats.stall_us.add(t0.elapsed().as_micros() as u64);
        }
        if st.shutdown {
            return Err(AfcError::ShutDown("kvstore".into()));
        }
        Ok(())
    }

    /// Commit a batch atomically.
    pub fn write_batch(&self, batch: &WriteBatch, opts: WriteOptions) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.stall_wait()?;
        let inner = &self.inner;
        inner.stats.user_bytes.add(batch.payload_bytes());
        inner.stats.commits.inc();
        let mut wal = inner.commit.lock();
        let charged = if opts.sync {
            wal.append_sync(batch.ops())?
        } else {
            wal.append_async(batch.ops(), inner.cfg.group_commit_bytes)?
        };
        inner.stats.wal_bytes.add(charged);
        let mut st = inner.state.lock();
        if st.shutdown {
            return Err(AfcError::ShutDown("kvstore".into()));
        }
        st.mem.apply_ops(batch.ops());
        if st.mem.approx_bytes() >= inner.cfg.memtable_bytes {
            let full = std::mem::take(&mut st.mem);
            st.imms.push_back(Arc::new(full));
            st.freeze_marks.push_back(wal.appended_records());
            inner.work_cv.notify_one();
        }
        Ok(())
    }

    /// Put a single key (one-op batch — the baseline filestore path).
    pub fn put(
        &self,
        key: impl Into<Key>,
        value: impl Into<Value>,
        opts: WriteOptions,
    ) -> Result<()> {
        let mut b = WriteBatch::new();
        b.put(key.into(), value.into());
        self.write_batch(&b, opts)
    }

    /// Delete a single key.
    pub fn delete(&self, key: impl Into<Key>, opts: WriteOptions) -> Result<()> {
        let mut b = WriteBatch::new();
        b.delete(key.into());
        self.write_batch(&b, opts)
    }

    /// Point lookup. Memtable hits are free; SSTable probes charge a device
    /// read (this is the metadata-read traffic §3.4 removes with the
    /// write-through cache).
    pub fn get(&self, key: &[u8]) -> Result<Option<Value>> {
        let inner = &self.inner;
        inner.stats.gets.inc();
        let (l0, l1) = {
            let st = inner.state.lock();
            if let Some(v) = st.mem.get(key) {
                return Ok(v);
            }
            for imm in st.imms.iter().rev() {
                if let Some(v) = imm.get(key) {
                    return Ok(v);
                }
            }
            (st.l0.clone(), st.l1.clone())
        };
        for t in l0.iter().rev() {
            if let Some(v) = t.get(key) {
                inner.stats.table_reads.inc();
                inner.charge_table_read(4 * KIB)?;
                return Ok(v);
            }
        }
        if let Some(t) = l1 {
            if let Some(v) = t.get(key) {
                inner.stats.table_reads.inc();
                inner.charge_table_read(4 * KIB)?;
                return Ok(v);
            }
        }
        Ok(None)
    }

    /// Range scan `lo <= key < hi`, tombstones resolved, key order.
    pub fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Key, Value)>> {
        let inner = &self.inner;
        let (mem_ops, imm_ops, l0, l1) = {
            let st = inner.state.lock();
            let mem_ops: Vec<BatchOp> = st
                .mem
                .range(lo, hi)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            let imm_ops: Vec<Vec<BatchOp>> = st
                .imms
                .iter()
                .rev()
                .map(|im| {
                    im.range(lo, hi)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect()
                })
                .collect();
            (mem_ops, imm_ops, st.l0.clone(), st.l1.clone())
        };
        let mut runs: Vec<Vec<BatchOp>> = vec![mem_ops];
        runs.extend(imm_ops);
        for t in l0.iter().rev() {
            let r = t.range(lo, hi);
            if !r.is_empty() {
                inner.stats.table_reads.inc();
                inner.charge_table_read(4 * KIB)?;
            }
            runs.push(r.to_vec());
        }
        if let Some(t) = &l1 {
            let r = t.range(lo, hi);
            if !r.is_empty() {
                inner.stats.table_reads.inc();
                inner.charge_table_read(4 * KIB)?;
            }
            runs.push(r.to_vec());
        }
        let refs: Vec<&[BatchOp]> = runs.iter().map(|r| r.as_slice()).collect();
        Ok(merge_runs(&refs, true)
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    /// Scan all keys with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Key, Value)>> {
        let mut hi = prefix.to_vec();
        // Smallest key strictly greater than every prefixed key.
        loop {
            match hi.last_mut() {
                Some(255) => {
                    hi.pop();
                }
                Some(b) => {
                    *b += 1;
                    break;
                }
                None => return self.scan(prefix, &[0xffu8; 64]), // prefix = 0xff* → scan to max
            }
        }
        self.scan(prefix, &hi)
    }

    /// Force the active memtable to freeze and wait until every frozen
    /// memtable is durable in L0 (WAL emptied of replay obligations).
    pub fn flush(&self) -> Result<()> {
        let inner = &self.inner;
        {
            let mut wal = inner.commit.lock();
            let charged = wal.sync()?;
            inner.stats.wal_bytes.add(charged);
            let mut st = inner.state.lock();
            if !st.mem.is_empty() {
                let full = std::mem::take(&mut st.mem);
                st.imms.push_back(Arc::new(full));
                st.freeze_marks.push_back(wal.appended_records());
                inner.work_cv.notify_one();
            }
        }
        // Wait for the background worker to drain the imm queue.
        let mut st = inner.state.lock();
        while !st.imms.is_empty() {
            if st.shutdown {
                return Err(AfcError::ShutDown("kvstore".into()));
            }
            inner.work_cv.notify_one();
            inner.stall_cv.wait(&mut st);
        }
        Ok(())
    }

    /// Wait until compaction debt is fully paid (imms drained and L0 below
    /// the compaction threshold). Test/bench helper.
    pub fn wait_idle(&self) {
        let inner = &self.inner;
        let mut st = inner.state.lock();
        while !st.imms.is_empty() || st.l0.len() >= inner.cfg.l0_compact_threshold {
            if st.shutdown {
                return;
            }
            inner.work_cv.notify_one();
            inner.stall_cv.wait(&mut st);
        }
    }

    /// Simulate a power failure and recover: volatile state (memtable,
    /// frozen-but-unflushed memtables, un-synced WAL records) is lost;
    /// recovery replays durable WAL records. Returns the number of records
    /// replayed.
    pub fn crash_and_recover(&self) -> Result<usize> {
        let inner = &self.inner;
        let mut wal = inner.commit.lock();
        let mut st = inner.state.lock();
        wal.drop_volatile();
        st.mem = MemTable::new();
        st.imms.clear();
        st.freeze_marks.clear();
        let records = wal.replay_records(true);
        let n = records.len();
        for rec in records {
            st.mem.apply_ops(rec);
        }
        Ok(n)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DbStats {
        self.inner.stats.snapshot()
    }

    /// Register this database's stat counters into a cluster metric
    /// registry under `<prefix>.<field>` (e.g. `osd0.kv.wal_bytes`).
    pub fn register_metrics(&self, m: &afc_common::metrics::Metrics, prefix: &str) {
        self.inner.stats.register_into(m, prefix);
    }

    /// Current shape of the store `(memtable bytes, #imm, #L0, L1 bytes)`.
    pub fn shape(&self) -> (u64, usize, usize, u64) {
        let st = self.inner.state.lock();
        (
            st.mem.approx_bytes(),
            st.imms.len(),
            st.l0.len(),
            st.l1.as_ref().map(|t| t.bytes()).unwrap_or(0),
        )
    }

    #[cfg(test)]
    pub(crate) fn pick_job_for_test(&self) -> Option<CompactionJob> {
        compaction::pick_job(&mut self.inner.state.lock(), &self.inner.cfg)
    }

    /// Dump every live key-value pair (diagnostics / property tests).
    pub fn dump(&self) -> Result<BTreeMap<Key, Value>> {
        Ok(self.scan(&[], &[0xffu8; 64])?.into_iter().collect())
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        self.inner.stall_cv.notify_all();
        if let Some(h) = self.worker.take() {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_device::{Nvram, NvramConfig, Ssd, SsdConfig};
    use bytes::Bytes;

    fn fast_db(cfg: DbConfig) -> Db {
        let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
        Db::open(dev, cfg).expect("open db")
    }

    fn kv(i: usize) -> (Bytes, Bytes) {
        (
            Bytes::from(format!("key{i:06}")),
            Bytes::from(format!("value-{i:06}")),
        )
    }

    #[test]
    fn put_get_roundtrip() {
        let db = fast_db(DbConfig::default());
        for i in 0..100 {
            let (k, v) = kv(i);
            db.put(k, v, WriteOptions::sync()).unwrap();
        }
        for i in 0..100 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap().unwrap(), v);
        }
        assert!(db.get(b"missing").unwrap().is_none());
    }

    #[test]
    fn delete_hides_key_across_levels() {
        let cfg = DbConfig {
            memtable_bytes: 512,
            ..DbConfig::default()
        }; // frequent flushes
        let db = fast_db(cfg);
        let (k, v) = kv(1);
        db.put(k.clone(), v, WriteOptions::sync()).unwrap();
        db.flush().unwrap();
        db.delete(k.clone(), WriteOptions::sync()).unwrap();
        assert!(db.get(&k).unwrap().is_none());
        db.flush().unwrap();
        db.wait_idle();
        assert!(db.get(&k).unwrap().is_none());
    }

    #[test]
    fn flush_moves_data_to_l0_and_survives() {
        let db = fast_db(DbConfig::default());
        for i in 0..50 {
            let (k, v) = kv(i);
            db.put(k, v, WriteOptions::sync()).unwrap();
        }
        db.flush().unwrap();
        let (_mem, imms, l0, _l1) = db.shape();
        assert_eq!(imms, 0);
        assert!(l0 >= 1);
        let (k, v) = kv(25);
        assert_eq!(db.get(&k).unwrap().unwrap(), v);
        assert!(db.stats().flushes >= 1);
    }

    #[test]
    fn compaction_merges_l0_into_l1() {
        let cfg = DbConfig {
            memtable_bytes: 2048,
            l0_compact_threshold: 2,
            ..DbConfig::default()
        };
        let db = fast_db(cfg);
        for i in 0..600 {
            let (k, v) = kv(i % 150);
            db.put(k, v, WriteOptions::async_()).unwrap();
        }
        db.flush().unwrap();
        db.wait_idle();
        let (_, _, l0, l1_bytes) = db.shape();
        assert!(l0 < 2, "l0={l0}");
        assert!(l1_bytes > 0);
        assert!(db.stats().compactions >= 1);
        for i in 0..150 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap().unwrap(), v, "key {i}");
        }
    }

    #[test]
    fn write_amplification_tracked() {
        let cfg = DbConfig {
            memtable_bytes: 4096,
            l0_compact_threshold: 2,
            ..DbConfig::default()
        };
        let db = fast_db(cfg);
        for i in 0..2000 {
            let (k, v) = kv(i % 400);
            db.put(k, v, WriteOptions::async_()).unwrap();
        }
        db.flush().unwrap();
        db.wait_idle();
        let s = db.stats();
        assert!(s.user_bytes > 0);
        assert!(
            s.write_amplification() > 1.0,
            "wa={}",
            s.write_amplification()
        );
        assert!(s.compact_write_bytes > 0);
    }

    #[test]
    fn batch_is_atomic_in_order() {
        let db = fast_db(DbConfig::default());
        let mut b = WriteBatch::new();
        b.put(&b"k"[..], &b"first"[..]);
        b.put(&b"k"[..], &b"second"[..]);
        b.delete(&b"gone"[..]);
        db.write_batch(&b, WriteOptions::sync()).unwrap();
        assert_eq!(db.get(b"k").unwrap().unwrap().as_ref(), b"second");
    }

    #[test]
    fn scan_merges_all_sources() {
        let cfg = DbConfig {
            memtable_bytes: 1024,
            ..DbConfig::default()
        };
        let db = fast_db(cfg);
        for i in 0..200 {
            let (k, v) = kv(i);
            db.put(k, v, WriteOptions::async_()).unwrap();
        }
        // Overwrite some in the (new) memtable after flush.
        db.flush().unwrap();
        db.put(kv(10).0, Bytes::from("NEW"), WriteOptions::sync())
            .unwrap();
        db.delete(kv(11).0, WriteOptions::sync()).unwrap();
        let all = db.scan_prefix(b"key").unwrap();
        assert_eq!(all.len(), 199);
        let as_map: BTreeMap<_, _> = all.into_iter().collect();
        assert_eq!(as_map.get(&kv(10).0).unwrap().as_ref(), b"NEW");
        assert!(!as_map.contains_key(&kv(11).0));
        // Range scan subset.
        let sub = db.scan(b"key000100", b"key000110").unwrap();
        assert_eq!(sub.len(), 10);
    }

    #[test]
    fn crash_recovers_synced_writes() {
        let db = fast_db(DbConfig::default());
        db.put(&b"durable"[..], &b"1"[..], WriteOptions::sync())
            .unwrap();
        db.put(&b"volatile"[..], &b"2"[..], WriteOptions::async_())
            .unwrap();
        let replayed = db.crash_and_recover().unwrap();
        assert!(replayed >= 1);
        assert_eq!(db.get(b"durable").unwrap().unwrap().as_ref(), b"1");
        assert!(
            db.get(b"volatile").unwrap().is_none(),
            "async write must be lost"
        );
    }

    #[test]
    fn crash_preserves_flushed_data() {
        let db = fast_db(DbConfig::default());
        for i in 0..100 {
            let (k, v) = kv(i);
            db.put(k, v, WriteOptions::async_()).unwrap();
        }
        db.flush().unwrap();
        db.crash_and_recover().unwrap();
        for i in 0..100 {
            let (k, v) = kv(i);
            assert_eq!(db.get(&k).unwrap().unwrap(), v, "key {i} lost");
        }
    }

    #[test]
    fn stalls_engage_under_pressure() {
        // A slow SSD device + tiny thresholds force the writer to outrun
        // compaction and stall.
        let dev = Arc::new(Ssd::new(SsdConfig {
            jitter: 0.0,
            ..SsdConfig::sata3()
        }));
        let cfg = DbConfig {
            memtable_bytes: 512,
            l0_compact_threshold: 1,
            l0_stall_threshold: 2,
            max_imm: 1,
            ..DbConfig::default()
        };
        let db = Db::open(dev, cfg).unwrap();
        for i in 0..300 {
            let (k, _) = kv(i);
            db.put(k, Bytes::from(vec![7u8; 64]), WriteOptions::async_())
                .unwrap();
        }
        let s = db.stats();
        assert!(s.stalls > 0, "expected stalls, got {s:?}");
        assert!(s.stall_us > 0);
    }

    #[test]
    fn shutdown_rejects_writes() {
        let db = fast_db(DbConfig::default());
        {
            let mut st = db.inner.state.lock();
            st.shutdown = true;
        }
        db.inner.stall_cv.notify_all();
        let err = db
            .put(&b"k"[..], &b"v"[..], WriteOptions::sync())
            .unwrap_err();
        assert_eq!(err.kind(), "shut_down");
        // Reset so Drop's join completes normally.
    }

    #[test]
    fn scan_prefix_edge_cases() {
        let db = fast_db(DbConfig::default());
        db.put(&b"\xff\xff"[..], &b"top"[..], WriteOptions::sync())
            .unwrap();
        db.put(&b"a"[..], &b"1"[..], WriteOptions::sync()).unwrap();
        let all = db.scan_prefix(b"\xff").unwrap();
        assert_eq!(all.len(), 1);
        let a = db.scan_prefix(b"a").unwrap();
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn dump_equals_model() {
        let db = fast_db(DbConfig {
            memtable_bytes: 1024,
            ..DbConfig::default()
        });
        let mut model = BTreeMap::new();
        for i in 0..300 {
            let (k, v) = kv(i % 97);
            db.put(k.clone(), v.clone(), WriteOptions::async_())
                .unwrap();
            model.insert(k, v);
        }
        for i in (0..97).step_by(3) {
            let (k, _) = kv(i);
            db.delete(k.clone(), WriteOptions::async_()).unwrap();
            model.remove(&k);
        }
        db.flush().unwrap();
        db.wait_idle();
        assert_eq!(db.dump().unwrap(), model);
    }
}
