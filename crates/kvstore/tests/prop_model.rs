//! Model-based property tests: the LSM store must behave exactly like a
//! `BTreeMap` under any operation sequence, including flushes, compaction
//! and crash-recovery of synced writes.

use afc_device::{Nvram, NvramConfig};
use afc_kvstore::{Db, DbConfig, WriteBatch, WriteOptions};
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, val: u16 },
    Delete { key: u8 },
    Batch { ops: Vec<(u8, Option<u16>)> },
    Flush,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u16>()).prop_map(|(key, val)| Op::Put { key, val }),
        2 => any::<u8>().prop_map(|key| Op::Delete { key }),
        2 => proptest::collection::vec((any::<u8>(), proptest::option::of(any::<u16>())), 1..8)
            .prop_map(|ops| Op::Batch { ops }),
        1 => Just(Op::Flush),
    ]
}

fn key(k: u8) -> Bytes {
    Bytes::from(format!("key-{k:03}"))
}

fn val(v: u16) -> Bytes {
    Bytes::from(format!("value-{v:05}"))
}

fn tiny_db() -> Db {
    let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
    // Small memtable and aggressive compaction so sequences cross every
    // structural boundary (freeze, flush, L0 pile-up, L1 merge).
    let cfg = DbConfig {
        memtable_bytes: 512,
        l0_compact_threshold: 2,
        l0_stall_threshold: 6,
        max_imm: 2,
        ..DbConfig::default()
    };
    Db::open(dev, cfg).expect("open db")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn db_matches_btreemap(ops in proptest::collection::vec(op(), 1..80)) {
        let db = tiny_db();
        let mut model: BTreeMap<Bytes, Bytes> = BTreeMap::new();
        for o in &ops {
            match o {
                Op::Put { key: k, val: v } => {
                    db.put(key(*k), val(*v), WriteOptions::async_()).unwrap();
                    model.insert(key(*k), val(*v));
                }
                Op::Delete { key: k } => {
                    db.delete(key(*k), WriteOptions::async_()).unwrap();
                    model.remove(&key(*k));
                }
                Op::Batch { ops } => {
                    let mut wb = WriteBatch::new();
                    for (k, v) in ops {
                        match v {
                            Some(v) => {
                                wb.put(key(*k), val(*v));
                                model.insert(key(*k), val(*v));
                            }
                            None => {
                                wb.delete(key(*k));
                                model.remove(&key(*k));
                            }
                        }
                    }
                    db.write_batch(&wb, WriteOptions::async_()).unwrap();
                }
                Op::Flush => db.flush().unwrap(),
            }
        }
        db.flush().unwrap();
        db.wait_idle();
        // Point lookups agree.
        for k in 0u8..=255 {
            prop_assert_eq!(db.get(&key(k)).unwrap(), model.get(&key(k)).cloned());
        }
        // Full dump agrees (scan correctness incl. tombstones).
        prop_assert_eq!(db.dump().unwrap(), model);
    }

    #[test]
    fn synced_writes_survive_crash(puts in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..30)) {
        let db = tiny_db();
        let mut model = BTreeMap::new();
        for (k, v) in &puts {
            db.put(key(*k), val(*v), WriteOptions::sync()).unwrap();
            model.insert(key(*k), val(*v));
        }
        db.crash_and_recover().unwrap();
        for (k, v) in &model {
            let got = db.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }

    #[test]
    fn range_scans_match_model(
        puts in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..60),
        lo in any::<u8>(),
        width in 1u16..128,
    ) {
        let db = tiny_db();
        let mut model = BTreeMap::new();
        for (k, v) in &puts {
            db.put(key(*k), val(*v), WriteOptions::async_()).unwrap();
            model.insert(key(*k), val(*v));
        }
        let hi = lo.saturating_add(width.min(255) as u8);
        let got = db.scan(&key(lo), &key(hi)).unwrap();
        let want: Vec<(Bytes, Bytes)> = model
            .range(key(lo)..key(hi))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        prop_assert_eq!(got, want);
    }
}
