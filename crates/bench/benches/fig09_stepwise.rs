//! **Figure 9** — stepwise performance improvement on clean-state SSDs,
//! 4K random write (fio, direct).
//!
//! The paper applies its optimizations cumulatively: Community → PG-lock
//! minimization → throttle policy & system tuning → non-blocking logging →
//! light-weight transactions, and reports more than 2× total improvement
//! in the clean state (the clean state flatters community Ceph because
//! small images mean little metadata to re-read).

use afc_bench::{build_cluster, fio, print_rows, run_fleet, save_rows, vm_images, FigRow};
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::Rw;

fn main() {
    let steps: [(&str, OsdTuning); 5] = [
        ("community", OsdTuning::community()),
        ("+lock-min", OsdTuning::step_lock_opt()),
        ("+throttle/tuning", OsdTuning::step_tuning()),
        ("+nonblock-log", OsdTuning::step_logging()),
        ("+lightweight-txn", OsdTuning::step_lwt()),
    ];
    let mut rows = Vec::new();
    for (i, (name, tuning)) in steps.into_iter().enumerate() {
        let tlabel = tuning.label();
        let cluster = build_cluster(4, 2, tuning, DeviceProfile::clean());
        // Clean-state devices; images are laid out (and connections warmed)
        // before measuring, as the paper's 100 GB images were created first.
        let images = vm_images(&cluster, 8, 64 << 20, true);
        // Moderate queue depth: deep queues saturate every config at the
        // same ceiling and hide the latency-path improvements (Little's
        // law); the paper's fio sweep also reports best-of moderate loads.
        let r = run_fleet(&images, &fio(Rw::RandWrite, 4096, 2).label(name));
        println!("{r}");
        rows.push(FigRow::from_report(name, i as f64, &r, false).with_tuning(tlabel));
        cluster.shutdown();
    }
    print_rows(
        "Figure 9: stepwise improvement, clean SSDs, 4K random write",
        "step",
        &rows,
    );
    save_rows("fig09", &rows);
    let gain = rows.last().unwrap().value / rows[0].value.max(1.0);
    println!("\ncumulative improvement: {gain:.2}x (paper: >2x)");
}
