//! Criterion micro-benchmarks for the individual substrates: LSM KV ops,
//! CRUSH mapping, logging submission under both modes, PG queue paths,
//! device planning, journal round trips, histogram recording.

use afc_common::{LatencyHist, ObjectId, PgId, PoolId};
use afc_core::osd::pg::Pg;
use afc_crush::osdmap::PoolSpec;
use afc_crush::{CrushMap, OsdMap};
use afc_device::{BlockDev, IoReq, Nvram, NvramConfig, Ssd, SsdConfig};
use afc_journal::{Journal, JournalConfig};
use afc_kvstore::{Db, DbConfig, WriteBatch, WriteOptions};
use afc_logging::{Level, LogConfig, Logger};
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_kvstore(c: &mut Criterion) {
    let mut g = c.benchmark_group("kvstore");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
    let db = Db::open(dev, DbConfig::default()).expect("open db");
    let mut i = 0u64;
    g.bench_function("put_async", |b| {
        b.iter(|| {
            i += 1;
            db.put(
                Bytes::from(format!("key{:08x}", i % 100_000)),
                Bytes::from(vec![0u8; 128]),
                WriteOptions::async_(),
            )
            .unwrap();
        })
    });
    g.bench_function("batch10_async", |b| {
        b.iter(|| {
            let mut wb = WriteBatch::new();
            for k in 0..10 {
                i += 1;
                wb.put(
                    Bytes::from(format!("key{:08x}", (i + k) % 100_000)),
                    Bytes::from(vec![0u8; 128]),
                );
            }
            db.write_batch(&wb, WriteOptions::async_()).unwrap();
        })
    });
    g.bench_function("get_hot", |b| {
        db.put(&b"hotkey"[..], &b"hotvalue"[..], WriteOptions::async_())
            .unwrap();
        b.iter(|| db.get(b"hotkey").unwrap())
    });
    g.finish();
}

fn bench_crush(c: &mut Criterion) {
    let mut g = c.benchmark_group("crush");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let mut map = OsdMap::new(CrushMap::uniform(16, 4));
    map.add_pool(
        PoolId(0),
        PoolSpec {
            pg_num: 4096,
            size: 3,
        },
    )
    .unwrap();
    let mut i = 0u32;
    g.bench_function("pg_acting_3x16x4", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            map.pg_acting(PgId {
                pool: PoolId(0),
                seq: i % 4096,
            })
            .unwrap()
        })
    });
    g.bench_function("object_to_pg", |b| {
        b.iter_batched(
            || ObjectId::new(PoolId(0), format!("rbd_data.vm.{i:016x}")),
            |o| o.pg(4096),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_logging(c: &mut Criterion) {
    let mut g = c.benchmark_group("logging");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let blocking = Logger::new(LogConfig::community());
    g.bench_function("blocking_submit", |b| {
        b.iter(|| blocking.log(Level::Debug, "osd", "hot path event"))
    });
    let nonblocking = Logger::new(LogConfig::afceph());
    g.bench_function("nonblocking_submit", |b| {
        b.iter(|| nonblocking.log(Level::Debug, "osd", "hot path event"))
    });
    let off = Logger::new(LogConfig::off());
    g.bench_function("off_submit", |b| {
        b.iter(|| off.log(Level::Debug, "osd", "hot path event"))
    });
    g.finish();
}

fn bench_pg_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("pg_queue");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let pg = Pg::new(PgId {
        pool: PoolId(0),
        seq: 1,
    });
    g.bench_function("submit_blocking_uncontended", |b| {
        b.iter(|| pg.submit(Box::new(|_st| {}), true))
    });
    g.bench_function("submit_pending_uncontended", |b| {
        b.iter(|| pg.submit(Box::new(|_st| {}), false))
    });
    g.finish();
}

fn bench_device(c: &mut Criterion) {
    let mut g = c.benchmark_group("device");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let ssd = Ssd::new(SsdConfig::sata3());
    g.bench_function("ssd_plan_4k_read", |b| {
        let mut off = 0u64;
        b.iter(|| {
            off = (off + 4096) % (1 << 30);
            ssd.plan(IoReq::read(off, 4096)).unwrap()
        })
    });
    g.finish();
}

fn bench_journal(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
    let j = Journal::new(dev, JournalConfig::default());
    g.bench_function("submit_and_wait_4k", |b| {
        b.iter(|| j.submit_and_wait(Bytes::from(vec![0u8; 4096])).unwrap())
    });
    g.finish();
}

fn bench_hist(c: &mut Criterion) {
    let mut g = c.benchmark_group("hist");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let mut h = LatencyHist::new();
    let mut i = 0u64;
    g.bench_function("record", |b| {
        b.iter(|| {
            i += 1;
            h.record_us(i % 100_000);
        })
    });
    g.bench_function("p99", |b| b.iter(|| h.p99()));
    g.finish();
}

criterion_group!(
    benches,
    bench_kvstore,
    bench_crush,
    bench_logging,
    bench_pg_queue,
    bench_device,
    bench_journal,
    bench_hist
);
criterion_main!(benches);
