//! **Figure 4** — Log vs No-log IOPS over time (PG-lock minimization and
//! system tuning applied, light-weight transactions NOT applied).
//!
//! Paper observation: with logging off, performance holds high for a few
//! seconds (point A) then begins fluctuating (point B) as the filestore
//! queue backs up — the filestore cannot apply as fast as the journal
//! commits, and the HDD-sized throttle then blocks the pipeline. With
//! logging on, the blocking logger caps throughput below the filestore's
//! trouble threshold.

use afc_bench::{bench_secs, build_cluster, fio, run_fleet, save_rows, vm_images, FigRow};
use afc_core::{DeviceProfile, LoggingMode, OsdTuning};
use afc_workload::Rw;
use std::time::Duration;

fn main() {
    let mut rows = Vec::new();
    for (name, logging) in [("log", LoggingMode::Blocking), ("nolog", LoggingMode::Off)] {
        // Lock optimization + tuning, but community filestore + throttle —
        // the configuration of the paper's Figure 4.
        let tuning = OsdTuning {
            logging,
            ..OsdTuning::step_tuning()
        };
        let tuning = OsdTuning {
            lightweight_txn: false,
            ..tuning
        };
        let tlabel = tuning.label();
        // Sustained flash plus a journal small enough that the
        // journal→filestore imbalance (the paper's point B) can appear
        // within the bench window.
        let devices = DeviceProfile::sustained().with_journal_capacity(48 << 20);
        let cluster = build_cluster(4, 2, tuning, devices);
        let images = vm_images(&cluster, 12, 64 << 20, true);
        let spec = fio(Rw::RandWrite, 4096, 8)
            .runtime(Duration::from_secs_f64((bench_secs() * 3.0).max(9.0)))
            .sample_interval(Duration::from_millis(250))
            .label(name);
        let r = run_fleet(&images, &spec);
        println!("{name}: {r}");
        println!("  IOPS over time (250ms windows):");
        // Merge per-VM series by window index for a readable train.
        for (t, v) in r.series.points().iter().take(120) {
            rows.push(FigRow {
                series: name.into(),
                x: *t,
                value: *v,
                lat_ms: 0.0,
                p99_ms: 0.0,
                unit: "IOPS(window)".into(),
                tuning: tlabel.into(),
            });
        }
        println!(
            "  mean {:.0} IOPS/VM-window, fluctuation cv={:.3}, min {:.0}, max {:.0}",
            r.series.mean(),
            r.series.cv(),
            r.series.min_value(),
            r.series.max_value()
        );
        let stats = cluster.osd_stats();
        let (tw, twu): (u64, u64) = stats.iter().fold((0, 0), |a, (_, s)| {
            (
                a.0 + s.filestore.throttle_waits,
                a.1 + s.filestore.throttle_wait_us,
            )
        });
        println!(
            "  filestore throttle: {} blocks, {} ms blocked (the 'contention' in Fig 2)",
            tw,
            twu / 1000
        );
        cluster.shutdown();
    }
    save_rows("fig04", &rows);
    println!("\n(paper: no-log is faster but fluctuates once the filestore queue grows; log caps throughput)");
}
