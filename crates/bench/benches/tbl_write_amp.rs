//! **§2.4/§3.4 analysis** — LSM write amplification vs block size.
//!
//! Paper: "when a client writes a total of 2GB using 4MB block size, 30MB
//! of additional data is written. However, if the block size is 4KB
//! instead, 2GB of additional data is written." Small blocks mean many
//! small omap/PG-log records, which churn the KV store's levels.
//!
//! We push the same client volume through the filestore at both block
//! sizes and report the KV store's device-write bytes vs user bytes.

use afc_common::bytesize::fmt_bytes;
use afc_common::Table;
use afc_device::{Nvram, NvramConfig};
use afc_filestore::{FileStore, FileStoreConfig, Transaction, TxOp};
use bytes::Bytes;
use std::sync::Arc;

fn drive(bs: u64, total: u64, profile: FileStoreConfig) -> (u64, u64, f64) {
    // Fast device so the table generates quickly; WA is a byte ratio and
    // does not depend on device speed.
    let dev = Arc::new(Nvram::new(NvramConfig::pmc_8g()));
    let fs = FileStore::new(dev, profile).expect("open filestore");
    let mut written = 0u64;
    let mut seq = 0u64;
    while written < total {
        seq += 1;
        let obj = format!("rbd_data.img.{:016x}", written / (4 << 20));
        let mut t = Transaction::new();
        t.push(TxOp::Touch {
            object: obj.clone(),
        });
        t.push(TxOp::Write {
            object: obj.clone(),
            offset: written % (4 << 20),
            data: Bytes::from(vec![0u8; bs as usize]),
        });
        t.push(TxOp::OmapSetKeys {
            object: "pgmeta_0.1".into(),
            keys: vec![
                (
                    Bytes::from(format!("pglog.{seq:016x}")),
                    Bytes::from(vec![1u8; 130]),
                ),
                (Bytes::from_static(b"info"), Bytes::from(vec![2u8; 64])),
            ],
        });
        fs.apply_sync(t).unwrap();
        written += bs;
    }
    fs.wait_idle();
    fs.sync().unwrap();
    let kv = fs.kv_stats();
    (
        kv.user_bytes,
        kv.device_write_bytes(),
        kv.write_amplification(),
    )
}

fn main() {
    // 64 MiB of client data stands in for the paper's 2 GB (ratio-preserving).
    let total = 64u64 << 20;
    let mut t = Table::new(vec![
        "profile",
        "bs",
        "kv user bytes",
        "kv device bytes",
        "extra",
        "extra/client-GB",
        "WA",
    ]);
    for (name, cfg) in [
        ("community", FileStoreConfig::community()),
        ("lightweight", FileStoreConfig::lightweight()),
    ] {
        for bs in [4u64 << 10, 4 << 20] {
            let mut cfg = cfg.clone();
            cfg.queue_max_ops = 5000; // don't throttle the generator
            let (user, device, wa) = drive(bs, total, cfg);
            let extra = device.saturating_sub(user);
            t.row(vec![
                name.to_string(),
                if bs == 4 << 10 {
                    "4K".into()
                } else {
                    "4M".into()
                },
                fmt_bytes(user),
                fmt_bytes(device),
                fmt_bytes(extra),
                fmt_bytes(extra * (1 << 30) / total),
                format!("{wa:.2}x"),
            ]);
        }
    }
    println!("== §3.4 analysis: KV write amplification vs client block size ==");
    println!(
        "({} client bytes per cell; paper wrote 2GB: 4M bs → ~30MB extra, 4K bs → ~2GB extra)",
        fmt_bytes(total)
    );
    t.print();
}
