//! **§3.4 analysis** — per-transaction cost: syscalls, KV commits,
//! metadata reads, community vs light-weight transactions.
//!
//! Paper: "various types of system calls such as (open, write, stat) are
//! repeated to the same file", "considerable amount of read operations are
//! always induced while handling write operation due to metadata (around
//! 15MB/s per disk)". This table measures exactly those counters across
//! 1000 identical write transactions.

use afc_common::Table;
use afc_device::{Ssd, SsdConfig};
use afc_filestore::{FileStore, FileStoreConfig, Transaction, TxOp};
use bytes::Bytes;
use std::sync::Arc;

fn txn(i: u64) -> Transaction {
    let obj = format!("rbd_data.img.{:016x}", i % 64);
    let mut t = Transaction::new();
    t.push(TxOp::Touch {
        object: obj.clone(),
    });
    t.push(TxOp::SetAllocHint {
        object: obj.clone(),
    });
    t.push(TxOp::Write {
        object: obj.clone(),
        offset: (i % 1024) * 4096,
        data: Bytes::from(vec![0u8; 4096]),
    });
    t.push(TxOp::SetAttrs {
        object: obj.clone(),
        attrs: vec![("snapset".into(), Bytes::from_static(b"{}"))],
    });
    t.push(TxOp::OmapSetKeys {
        object: "pgmeta_0.1".into(),
        keys: vec![
            (
                Bytes::from(format!("pglog.{i:016x}")),
                Bytes::from(vec![1u8; 130]),
            ),
            (Bytes::from_static(b"info"), Bytes::from(vec![2u8; 64])),
        ],
    });
    t
}

fn main() {
    const N: u64 = 1000;
    let mut table = Table::new(vec![
        "profile",
        "syscalls/txn",
        "opens/txn",
        "kv commits/txn",
        "meta reads/txn",
        "dev reads during writes",
        "hints skipped",
    ]);
    for (name, mut cfg) in [
        ("community", FileStoreConfig::community()),
        ("lightweight", FileStoreConfig::lightweight()),
    ] {
        cfg.queue_max_ops = 5000;
        let dev = Arc::new(Ssd::new(SsdConfig {
            jitter: 0.0,
            ..SsdConfig::sata3()
        }));
        let fs = FileStore::new(dev, cfg).expect("open filestore");
        for i in 0..N {
            fs.apply_sync(txn(i)).unwrap();
        }
        fs.wait_idle();
        let c = fs.fs().counters();
        let syscalls: u64 = [
            "sys.open",
            "sys.write",
            "sys.read",
            "sys.stat",
            "sys.setxattr",
            "sys.getxattr",
            "sys.fallocate",
        ]
        .iter()
        .map(|s| c.get(s))
        .sum();
        let kv = fs.kv_stats();
        let s = fs.stats();
        let dev_reads = fs.fs().device().stats();
        table.row(vec![
            name.to_string(),
            format!("{:.1}", syscalls as f64 / N as f64),
            format!("{:.1}", c.get("sys.open") as f64 / N as f64),
            format!("{:.1}", kv.commits as f64 / N as f64),
            format!("{:.2}", s.meta_reads as f64 / N as f64),
            format!(
                "{} ({} interfered)",
                dev_reads.reads, dev_reads.interfered_reads
            ),
            format!("{}", s.hints_skipped),
        ]);
    }
    println!("== §3.4 analysis: per-transaction software cost (1000 × 4K write txns) ==");
    table.print();
    println!("(paper: LWT removes redundant syscalls, batches KV insertion, and removes metadata reads from the write path)");
}
