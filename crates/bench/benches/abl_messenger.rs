//! **Extension ablation** — SimpleMessenger vs AsyncMessenger (§4.5).
//!
//! The paper attributes its 16-node 4K-random-read ceiling to
//! SimpleMessenger's sender+receiver thread per connection. Ceph's later
//! AsyncMessenger multiplexes connections over a fixed pool; this ablation
//! compares both receive-side models under a fan-in-heavy random-read load
//! with per-message CPU cost enabled, and reports thread/lane counts.

use afc_bench::{fio, print_rows, run_fleet, save_rows, vm_images, FigRow};
use afc_core::{Cluster, DeviceProfile, OsdTuning};
use afc_messenger::MessengerMode;
use afc_workload::Rw;
use std::time::Duration;

fn main() {
    let mut rows = Vec::new();
    for (i, (name, mode)) in [
        ("simple(thread/conn)", MessengerMode::Simple),
        ("async(4 workers)", MessengerMode::Async { workers: 4 }),
        ("async(8 workers)", MessengerMode::Async { workers: 8 }),
    ]
    .into_iter()
    .enumerate()
    {
        let cluster = Cluster::builder()
            .nodes(4)
            .osds_per_node(2)
            .replication(2)
            .pg_num(128)
            .tuning(OsdTuning::afceph())
            .devices(DeviceProfile::clean())
            .messenger_cpu(Duration::from_micros(15))
            .messenger_mode(mode)
            .build()
            .unwrap();
        let images = vm_images(&cluster, 12, 64 << 20, true);
        let r = run_fleet(&images, &fio(Rw::RandRead, 4096, 2).label(name));
        println!("{r}");
        let c = cluster.network().counters();
        println!(
            "  connections={} receive threads={}",
            c.get("net.conns"),
            if c.get("net.lanes") > 0 {
                c.get("net.lanes")
            } else {
                c.get("net.conns")
            },
        );
        rows.push(FigRow::from_report(name, i as f64, &r, false).with_tuning("afceph"));
        cluster.shutdown();
    }
    print_rows(
        "Extension ablation: messenger threading model (4K randread, 12 VMs)",
        "variant",
        &rows,
    );
    save_rows("abl_messenger", &rows);
    println!("(the paper's fix direction: bounded receive threads remove the per-connection CPU ceiling)");
}
