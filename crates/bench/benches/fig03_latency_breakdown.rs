//! **Figure 3** — write-path latency breakdown (community Ceph).
//!
//! The paper instruments one write's control flow: message processing
//! ≈1 ms, PG-queue dequeue → journal submit ≈3 ms (PG lock + replication
//! send + metadata read), journal write ≈8 ms, journal-completion hand-off
//! ≈1.1 ms, replica-commit handling ≈1.1 ms — PG-lock-related delay ≈9 ms
//! of a ≈17 ms total. We print the same stages from the OSD's sampled
//! stage recorder, community vs AFCeph, under load.

use afc_bench::{bench_secs, build_cluster, fio, run_fleet, vm_images};
use afc_common::timeutil::fmt_dur;
use afc_common::Table;
use afc_core::osd::StageSample;
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::Rw;
use std::time::Duration;

fn main() {
    let mut table = Table::new(vec![
        "config",
        "queue(1)",
        "submit(2)",
        "journal(4)",
        "completion(5)",
        "replica(6,7)",
        "reply",
        "total",
        "pg-lock-wait/op",
    ]);
    for (name, tuning) in [
        ("community", OsdTuning::community()),
        ("afceph", OsdTuning::afceph()),
    ] {
        let cluster = build_cluster(4, 2, tuning, DeviceProfile::sustained());
        let images = vm_images(&cluster, 8, 64 << 20, true);
        let spec = fio(Rw::RandWrite, 4096, 4)
            .runtime(Duration::from_secs_f64(bench_secs().max(3.0)))
            .label("fig03");
        let r = run_fleet(&images, &spec);
        println!("{name}: {r}");
        let mut samples: Vec<StageSample> = Vec::new();
        for osd in cluster.osds() {
            samples.extend(osd.stage_samples());
        }
        let m = StageSample::mean(&samples);
        let stats = cluster.osd_stats();
        let writes: u64 = stats.iter().map(|(_, s)| s.writes).sum::<u64>().max(1);
        let lock_wait: u64 = stats.iter().map(|(_, s)| s.pg_lock_wait_us).sum();
        table.row(vec![
            name.to_string(),
            fmt_dur(m.queue),
            fmt_dur(m.submit),
            fmt_dur(m.journal),
            fmt_dur(m.completion),
            fmt_dur(m.replica_wait),
            fmt_dur(m.reply),
            fmt_dur(m.total),
            fmt_dur(Duration::from_micros(lock_wait / writes)),
        ]);
        cluster.shutdown();
    }
    println!(
        "\n== Figure 3: write-path latency breakdown ({} samples/osd cap) ==",
        4096
    );
    table.print();
    println!("(paper, community: queue≈1ms submit≈3ms journal≈8ms completion≈1.1ms replica≈1.1ms of ≈17ms total)");
}
