//! **Figure 11** — SolidFire vs AFCeph vs Community Ceph, max VM-based
//! performance, sustained state.
//!
//! Paper methodology and headlines: for 4K random write the community
//! figure is taken at *minimal latency* (5.7 ms) for a fair comparison —
//! giving 3K IOPS, "almost the same as HDD-based Ceph", vs AFCeph 71K
//! @3.4 ms and SolidFire 78K (AFCeph wins 32K random write because
//! SolidFire is optimized for 4K chunks); random reads favour AFCeph; and
//! sequential workloads run 3–4× faster on either Ceph than on SolidFire,
//! whose 4K dedup chunking turns client-sequential into cluster-random.
//!
//! We reproduce both views: best-effort IOPS per system per panel, and the
//! iso-latency 4K-random-write comparison (each system's IOPS at the
//! lowest offered load whose mean latency fits the budget).

use afc_bench::{build_cluster, fio, print_rows, save_rows, vm_images, FigRow};
use afc_common::BlockTarget;
use afc_core::{DeviceProfile, OsdTuning};
use afc_solidfire::{SfCluster, SfConfig};
use afc_workload::{JobSpec, Report, Rw};
use std::sync::Arc;

const PANELS: [(&str, Rw, u64, bool); 6] = [
    ("4k-randwrite", Rw::RandWrite, 4 << 10, false),
    ("32k-randwrite", Rw::RandWrite, 32 << 10, false),
    ("seq-write", Rw::SeqWrite, 1 << 20, true),
    ("4k-randread", Rw::RandRead, 4 << 10, false),
    ("32k-randread", Rw::RandRead, 32 << 10, false),
    ("seq-read", Rw::SeqRead, 1 << 20, true),
];

fn run_targets(
    name: &str,
    targets: &[Arc<dyn BlockTarget>],
    rows: &mut Vec<FigRow>,
    quiesce: &dyn Fn(),
) {
    for (panel, rw, bs, seq) in PANELS {
        quiesce(); // drain the previous panel's backlog
        let spec: JobSpec = fio(rw, bs, 2).label(format!("{name}/{panel}"));
        let reports: Vec<Report> = std::thread::scope(|s| {
            let hs: Vec<_> = targets
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let spec = spec.clone().seed(spec.seed ^ (i as u64) << 8);
                    let t = Arc::clone(t);
                    s.spawn(move || afc_workload::run(&spec, t.as_ref()))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let merged = afc_bench::merge_reports(reports, &spec);
        println!("{merged}");
        rows.push(FigRow::from_report(name, panel_index(panel), &merged, seq));
    }
}

fn panel_index(p: &str) -> f64 {
    PANELS.iter().position(|(n, ..)| *n == p).unwrap() as f64
}

fn main() {
    let vms = 8;
    let mut rows = Vec::new();
    let mut iso: Vec<(String, f64, f64)> = Vec::new(); // (system, iops, lat) at iso-latency

    for (name, tuning) in [
        ("community", OsdTuning::community()),
        ("afceph", OsdTuning::afceph()),
    ] {
        let cluster = build_cluster(4, 2, tuning, DeviceProfile::sustained());
        let images = vm_images(&cluster, vms, 64 << 20, true);
        let targets: Vec<Arc<dyn BlockTarget>> = images
            .iter()
            .map(|i| Arc::clone(i) as Arc<dyn BlockTarget>)
            .collect();
        run_targets(name, &targets, &mut rows, &|| cluster.quiesce());
        iso.push(iso_latency_point(name, &targets));
        cluster.shutdown();
    }
    {
        // SolidFire with the paper's mandatory dedup on fully-random data
        // (the FIO buffer pattern defeats dedup, as the paper intends).
        let sf = SfCluster::new(SfConfig {
            nodes: 4,
            ssds_per_node: 6,
            ..SfConfig::paper()
        })
        .unwrap();
        let targets: Vec<Arc<dyn BlockTarget>> = (0..vms)
            .map(|i| {
                Arc::new(sf.volume(format!("v{i}"), 64 << 20).unwrap()) as Arc<dyn BlockTarget>
            })
            .collect();
        // Prefill so reads hit stored chunks.
        for (i, t) in targets.iter().enumerate() {
            let mut buf = vec![0u8; 1 << 20];
            for (j, b) in buf.iter_mut().enumerate() {
                *b = (i * 31 + j) as u8;
            }
            let mut off = 0;
            while off + (1 << 20) <= t.size() {
                t.write_at(off, &buf).unwrap();
                off += 1 << 20;
            }
        }
        sf.quiesce();
        run_targets("solidfire", &targets, &mut rows, &|| sf.quiesce());
        iso.push(iso_latency_point("solidfire", &targets));
        let s = sf.stats();
        println!(
            "[solidfire] dedup hits {} / misses {}",
            s.dedup_hits, s.dedup_misses
        );
    }

    print_rows(
        "Figure 11: SolidFire vs AFCeph vs Community (panel index as x)",
        "panel",
        &rows,
    );
    save_rows("fig11", &rows);
    println!("\npanels: {:?}", PANELS.map(|p| p.0));
    println!("\n== Figure 11(a,c) methodology: 4K random write at iso-latency ==");
    for (name, iops, lat) in &iso {
        println!("  {name:10} {iops:>8.0} IOPS at {lat:.2} ms mean latency");
    }
}

/// The paper's fair-comparison method for Fig 11(a,c): take each system's
/// 4K-random-write IOPS at the lowest offered load whose mean latency is
/// within the budget; systems that cannot get under the budget report
/// their minimum-load point (as the paper did for community at 5.7 ms).
fn iso_latency_point(name: &str, targets: &[Arc<dyn BlockTarget>]) -> (String, f64, f64) {
    let budget_ms = 8.0;
    let mut best = (0.0f64, f64::MAX);
    for iodepth in [1usize, 2, 4, 8] {
        let spec = fio(Rw::RandWrite, 4096, iodepth).label(format!("{name}/iso/qd{iodepth}"));
        let reports: Vec<Report> = std::thread::scope(|s| {
            let hs: Vec<_> = targets
                .iter()
                .map(|t| {
                    let spec = spec.clone();
                    let t = Arc::clone(t);
                    s.spawn(move || afc_workload::run(&spec, t.as_ref()))
                })
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let r = afc_bench::merge_reports(reports, &spec);
        let lat_ms = r.mean_lat().as_secs_f64() * 1e3;
        if lat_ms <= budget_ms && r.iops() > best.0 {
            best = (r.iops(), lat_ms);
        } else if best.1 == f64::MAX && lat_ms < best.1 {
            best = (r.iops(), lat_ms); // minimum-latency fallback
        }
        if lat_ms > budget_ms * 2.0 {
            break; // deeper queues only get worse
        }
    }
    (name.to_string(), best.0, best.1)
}
