//! **Ablation** — `filestore_queue_max_ops` sweep (§3.2).
//!
//! The paper: "performance degradation disappears only when combination of
//! parameters for throttle are fixed together... Throttle parameter is
//! determined as 30K IOPS, because a single block device can perform 30K
//! IOPS in sustained state." We sweep the op cap and report throughput,
//! latency, and time blocked on the throttle.

use afc_bench::{bench_secs, build_cluster, fio, run_fleet, save_rows, vm_images, FigRow};
use afc_common::Table;
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::Rw;
use std::time::Duration;

fn main() {
    let caps = [2u64, 10, 50, 500, 5000];
    let mut table = Table::new(vec![
        "queue_max_ops",
        "IOPS",
        "lat(ms)",
        "p99(ms)",
        "throttle blocks",
        "blocked(ms)",
    ]);
    let mut rows = Vec::new();
    for &cap in &caps {
        let cluster = build_cluster(2, 2, OsdTuning::afceph(), DeviceProfile::sustained());
        for osd in cluster.osds() {
            osd.store().set_queue_max_ops(cap);
        }
        let images = vm_images(&cluster, 8, 64 << 20, false);
        let spec = fio(Rw::RandWrite, 4096, 4)
            .runtime(Duration::from_secs_f64(bench_secs()))
            .label(format!("cap={cap}"));
        let r = run_fleet(&images, &spec);
        let stats = cluster.osd_stats();
        let (tw, twu): (u64, u64) = stats.iter().fold((0, 0), |a, (_, s)| {
            (
                a.0 + s.filestore.throttle_waits,
                a.1 + s.filestore.throttle_wait_us,
            )
        });
        table.row(vec![
            cap.to_string(),
            format!("{:.0}", r.iops()),
            format!("{:.2}", r.mean_lat().as_secs_f64() * 1e3),
            format!("{:.2}", r.p99().as_secs_f64() * 1e3),
            tw.to_string(),
            (twu / 1000).to_string(),
        ]);
        rows.push(FigRow::from_report("throttle", cap as f64, &r, false).with_tuning("afceph"));
        cluster.shutdown();
    }
    println!("== Ablation: filestore_queue_max_ops (HDD-sized caps strangle flash) ==");
    table.print();
    save_rows("abl_throttle", &rows);
}
