//! **Ablation** — metadata-cache capacity sweep (§3.4).
//!
//! The paper sizes the write-through cache from object counts (≈2.5 GB of
//! metadata per 10 TB at 4 MB objects) and argues the residency is cheap.
//! Here we shrink the cache below the working set and watch the §3.4
//! metadata reads reappear in the write path.

use afc_common::Table;
use afc_device::{Ssd, SsdConfig};
use afc_filestore::{FileStore, FileStoreConfig, Transaction, TxOp};
use bytes::Bytes;
use std::sync::Arc;

fn main() {
    const OBJECTS: u64 = 512;
    const WRITES: u64 = 4096;
    let mut table = Table::new(vec![
        "cache entries",
        "meta reads",
        "hit rate",
        "interfered dev reads",
    ]);
    for cache in [16usize, 64, 256, 512, 1024] {
        let dev = Arc::new(Ssd::new(SsdConfig {
            jitter: 0.0,
            ..SsdConfig::sata3()
        }));
        let mut cfg = FileStoreConfig::lightweight();
        cfg.meta_cache_entries = cache;
        cfg.queue_max_ops = 5000;
        let fs = FileStore::new(dev, cfg).expect("open filestore");
        for i in 0..WRITES {
            let obj = format!("obj.{:08x}", (i * 2654435761) % OBJECTS); // scattered reuse
            let mut t = Transaction::new();
            t.push(TxOp::Touch {
                object: obj.clone(),
            });
            t.push(TxOp::Write {
                object: obj,
                offset: 0,
                data: Bytes::from(vec![0u8; 4096]),
            });
            fs.apply_sync(t).unwrap();
        }
        fs.wait_idle();
        let s = fs.stats();
        let hits = s.cache_hits as f64 / (s.cache_hits + s.cache_misses).max(1) as f64;
        table.row(vec![
            cache.to_string(),
            s.meta_reads.to_string(),
            format!("{:.1}%", hits * 100.0),
            fs.fs().device().stats().interfered_reads.to_string(),
        ]);
    }
    println!("== Ablation: write-through metadata cache size ({OBJECTS}-object working set, {WRITES} writes) ==");
    table.print();
    println!("(a cache below the working set reintroduces the read-during-write traffic §3.4 eliminates)");
}
