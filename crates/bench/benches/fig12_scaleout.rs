//! **Figure 12** — AFCeph scale-out test: throughput vs node count.
//!
//! The paper grows the cluster 4→16 nodes (clean SSDs) with proportional
//! client load and finds near-linear scaling for every pattern except 4K
//! random read at 16 nodes, which falls off because SimpleMessenger burns
//! a sender+receiver thread of CPU per connection.
//!
//! Scaled: nodes ∈ {2,3,4,6} × 2 OSDs, one VM per node, with the
//! per-message messenger CPU cost enabled so the read ceiling appears at
//! the top scale on this single-core host exactly as CPU did on theirs.

use afc_bench::{fio, print_rows, run_fleet, save_rows, vm_images, FigRow};
use afc_core::{Cluster, DeviceProfile, OsdTuning};
use afc_workload::Rw;
use std::time::Duration;

fn main() {
    let node_counts = [2u32, 3, 4, 6];
    let panels: [(&str, Rw, u64, bool); 3] = [
        ("4k-randwrite", Rw::RandWrite, 4 << 10, false),
        ("4k-randread", Rw::RandRead, 4 << 10, false),
        ("seq-read", Rw::SeqRead, 1 << 20, true),
    ];
    let mut rows = Vec::new();
    for &nodes in &node_counts {
        let cluster: Cluster = Cluster::builder()
            .nodes(nodes)
            .osds_per_node(2)
            .replication(2)
            .pg_num(64 * nodes)
            .tuning(OsdTuning::afceph())
            .devices(DeviceProfile::clean())
            .messenger_cpu(Duration::from_micros(10))
            .build()
            .unwrap();
        let vms = nodes as usize; // one driving VM per node, load ∝ nodes
        let images = vm_images(&cluster, vms, 64 << 20, true);
        for (panel, rw, bs, seq) in panels {
            let r = run_fleet(&images, &fio(rw, bs, 2).label(format!("n{nodes}/{panel}")));
            println!("{r}");
            rows.push(FigRow::from_report(panel, nodes as f64, &r, seq).with_tuning("afceph"));
        }
        cluster.shutdown();
    }
    print_rows(
        "Figure 12: AFCeph scale-out (clean SSDs, load ∝ nodes)",
        "nodes",
        &rows,
    );
    save_rows("fig12", &rows);
    for (panel, ..) in panels {
        let pts: Vec<&FigRow> = rows.iter().filter(|r| r.series == panel).collect();
        let lin = (pts.last().unwrap().value / pts[0].value) / (pts.last().unwrap().x / pts[0].x);
        println!(
            "{panel}: scaling efficiency at max nodes = {:.0}% of linear",
            lin * 100.0
        );
    }
    println!("(paper: all patterns ≈linear except 4K random read at 16 nodes — messenger CPU)");
    println!("(host note: this machine has ONE core, so added nodes add threads but no");
    println!(" compute — absolute scaling saturates early; the reproduced effect is the");
    println!(" per-connection messenger cost growing with cluster size, which is what");
    println!(" capped the paper's 16-node random reads. See EXPERIMENTS.md.)");
}
