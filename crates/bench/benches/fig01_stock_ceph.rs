//! **Figure 1** — stock (community) Ceph on all-flash: 4K random
//! write/read IOPS and latency versus client thread count.
//!
//! Paper observation: random-write IOPS plateaus (~16K on their 40-SSD
//! testbed) while latency climbs sharply past 32 threads; random reads
//! only reach good IOPS at high thread counts because the whole stack is
//! batched for HDDs.
//!
//! Scaled here to a 4×2-OSD cluster on one host; the *shape* (write
//! plateau + latency blow-up, read needing concurrency) is the result.

use afc_bench::{build_cluster, fio, print_rows, run_fleet, save_rows, vm_images, FigRow};
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::Rw;

fn main() {
    let threads = [1usize, 2, 4, 8, 16, 32];
    let cluster = build_cluster(4, 2, OsdTuning::community(), DeviceProfile::sustained());
    let images = vm_images(&cluster, 4, 64 << 20, true);
    let mut rows = Vec::new();
    for rw in [Rw::RandWrite, Rw::RandRead] {
        for &t in &threads {
            let spec = fio(rw, 4096, t).label(format!("{} t={t}", rw.name()));
            let r = run_fleet(&images, &spec);
            println!("  {r}");
            rows.push(FigRow::from_report(rw.name(), t as f64, &r, false).with_tuning("community"));
        }
    }
    print_rows(
        "Figure 1: stock Ceph, 4K random I/O vs thread count",
        "threads",
        &rows,
    );
    save_rows("fig01", &rows);
    // The paper's two observations, asserted loosely so regressions shout:
    let w: Vec<&FigRow> = rows.iter().filter(|r| r.series == "randwrite").collect();
    let plateau = w.last().unwrap().value / w[w.len() - 2].value;
    let lat_blowup = w.last().unwrap().lat_ms / w[0].lat_ms;
    println!("\nwrite plateau factor (32 vs 16 threads): {plateau:.2} (≈1 means plateau)");
    println!("write latency blow-up (32 vs 1 thread): {lat_blowup:.1}x");
    cluster.shutdown();
}
