//! **Ablation** — journal capacity sweep (the Figure 10 32K-write
//! fluctuation mechanism).
//!
//! "An NVRAM used as journal disk is faster than SSDs being used as
//! filestore. If journal is full with its data, the system gets blocked
//! until some of data in journal is flushed to filestore. As a result,
//! performance fluctuation is observed." Small journals stall sooner; big
//! journals absorb the burst.

use afc_bench::{bench_secs, build_cluster, fio, run_fleet, save_rows, vm_images, FigRow};
use afc_common::bytesize::fmt_bytes;
use afc_common::Table;
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::Rw;
use std::time::Duration;

fn main() {
    let sizes: [u64; 4] = [4 << 20, 16 << 20, 64 << 20, 512 << 20];
    let mut table = Table::new(vec![
        "journal",
        "IOPS",
        "cv(fluctuation)",
        "journal-full stalls",
        "stalled(ms)",
    ]);
    let mut rows = Vec::new();
    for &cap in &sizes {
        let devices = DeviceProfile::sustained().with_journal_capacity(cap);
        let cluster = build_cluster(2, 2, OsdTuning::afceph(), devices);
        let images = vm_images(&cluster, 8, 64 << 20, false);
        let spec = fio(Rw::RandWrite, 32 << 10, 4)
            .runtime(Duration::from_secs_f64((bench_secs() * 2.0).max(6.0)))
            .sample_interval(Duration::from_millis(250))
            .label(format!("journal={}", fmt_bytes(cap)));
        let r = run_fleet(&images, &spec);
        let stats = cluster.osd_stats();
        let (fs_, fsu): (u64, u64) = stats.iter().fold((0, 0), |a, (_, s)| {
            (a.0 + s.journal.full_stalls, a.1 + s.journal.full_stall_us)
        });
        table.row(vec![
            fmt_bytes(cap),
            format!("{:.0}", r.iops()),
            format!("{:.3}", r.series.cv()),
            fs_.to_string(),
            (fsu / 1000).to_string(),
        ]);
        rows.push(FigRow::from_report("journal_size", cap as f64, &r, false).with_tuning("afceph"));
        cluster.shutdown();
    }
    println!("== Ablation: journal capacity vs 32K random-write fluctuation ==");
    table.print();
    save_rows("abl_journal_size", &rows);
}
