//! **Ablation** — the §3.1 lock optimizations in isolation.
//!
//! Holds everything else at the AFCeph configuration and toggles each lock
//! optimization off individually, so its marginal contribution under a PG-
//! contended 4K random write load is visible.

use afc_bench::{fio, print_rows, run_fleet, save_rows, vm_images, FigRow};
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::Rw;

fn main() {
    let variants: [(&str, OsdTuning); 5] = [
        ("afceph(all)", OsdTuning::afceph()),
        (
            "-pending_queue",
            OsdTuning {
                pending_queue: false,
                ..OsdTuning::afceph()
            },
        ),
        (
            "-dedicated_completion",
            OsdTuning {
                dedicated_completion: false,
                ..OsdTuning::afceph()
            },
        ),
        (
            "-fast_ack",
            OsdTuning {
                fast_ack: false,
                ..OsdTuning::afceph()
            },
        ),
        (
            "none(of §3.1)",
            OsdTuning {
                pending_queue: false,
                dedicated_completion: false,
                fast_ack: false,
                ..OsdTuning::afceph()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (i, (name, tuning)) in variants.into_iter().enumerate() {
        let tlabel = tuning.label();
        // Few PGs → heavy PG-lock contention, the regime these fixes target.
        let cluster = afc_core::Cluster::builder()
            .nodes(2)
            .osds_per_node(2)
            .replication(2)
            .pg_num(16)
            .tuning(tuning)
            .devices(DeviceProfile::sustained())
            .build()
            .unwrap();
        let images = vm_images(&cluster, 8, 64 << 20, false);
        let r = run_fleet(&images, &fio(Rw::RandWrite, 4096, 4).label(name));
        println!("{r}");
        let waits: u64 = cluster
            .osd_stats()
            .iter()
            .map(|(_, s)| s.pg_lock_wait_us)
            .sum();
        println!("  total PG-lock wait: {} ms", waits / 1000);
        rows.push(FigRow::from_report(name, i as f64, &r, false).with_tuning(tlabel));
        cluster.shutdown();
    }
    print_rows(
        "Ablation: §3.1 lock optimizations (16 PGs, 4K randwrite)",
        "variant",
        &rows,
    );
    save_rows("abl_pending_queue", &rows);
}
