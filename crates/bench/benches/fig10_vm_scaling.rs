//! **Figure 10** — virtual-machine scaling, sustained-state SSDs.
//!
//! The paper sweeps 10→80 VMs (KVM, one RBD image each) over six panels:
//! 4K/32K random write, sequential write, 4K/32K random read, sequential
//! read, comparing Community Ceph and AFCeph. Headlines: 4K random write
//! 22K IOPS @58 ms (community, 80 VMs) vs 81K @7.9 ms (AFCeph); 32K random
//! write ≈4×; sequential parity; random reads ≈2× under heavy load.
//!
//! Scaled: VM counts default to {2,4,8,12,16} on a 4×2-OSD cluster
//! (override with AFC_BENCH_VMS_MAX); image spans are prefilled so reads
//! hit real objects (the paper fills 80% of the disks).

use afc_bench::{build_cluster, fio, print_rows, run_fleet, save_rows, vm_images, vms_max, FigRow};
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::{JobSpec, Rw};
use std::sync::Arc;

fn main() {
    let max = vms_max();
    let vm_counts: Vec<usize> = [2usize, 4, 8, 12, 16]
        .iter()
        .copied()
        .filter(|v| *v <= max)
        .collect();
    let panels: [(&str, Rw, u64, bool); 6] = [
        ("4k-randwrite", Rw::RandWrite, 4 << 10, false),
        ("32k-randwrite", Rw::RandWrite, 32 << 10, false),
        ("seq-write", Rw::SeqWrite, 1 << 20, true),
        ("4k-randread", Rw::RandRead, 4 << 10, false),
        ("32k-randread", Rw::RandRead, 32 << 10, false),
        ("seq-read", Rw::SeqRead, 1 << 20, true),
    ];
    let mut all_rows = Vec::new();
    for (cfg_name, tuning) in [
        ("community", OsdTuning::community()),
        ("afceph", OsdTuning::afceph()),
    ] {
        // The Figure-10 journal-full fluctuation needs a journal the 32K
        // stream can fill at bench scale.
        let devices = DeviceProfile::sustained().with_journal_capacity(64 << 20);
        let cluster = build_cluster(4, 2, tuning, devices);
        let images = vm_images(&cluster, *vm_counts.last().unwrap(), 64 << 20, true);
        for (panel, rw, bs, seq) in panels {
            // Drain the previous panel's apply backlog so each panel
            // measures its own workload, not the prior panel's debt.
            cluster.quiesce();
            for &vms in &vm_counts {
                let spec: JobSpec = fio(rw, bs, 2).label(format!("{cfg_name}/{panel}/vms={vms}"));
                let subset: Vec<Arc<_>> = images.iter().take(vms).cloned().collect();
                let r = run_fleet(&subset, &spec);
                println!("{r}");
                all_rows.push(
                    FigRow::from_report(&format!("{cfg_name}/{panel}"), vms as f64, &r, seq)
                        .with_tuning(cfg_name),
                );
            }
        }
        let stats = cluster.osd_stats();
        let jf: u64 = stats.iter().map(|(_, s)| s.journal.full_stalls).sum();
        println!("[{cfg_name}] journal-full stalls across OSDs: {jf}");
        cluster.shutdown();
    }
    print_rows(
        "Figure 10: VM scaling, sustained SSDs (6 panels)",
        "VMs",
        &all_rows,
    );
    save_rows("fig10", &all_rows);
    // Headline comparison at max VMs for the 4K random panels.
    for panel in ["4k-randwrite", "4k-randread"] {
        let get = |cfg: &str| {
            all_rows
                .iter()
                .rfind(|r| r.series == format!("{cfg}/{panel}"))
                .map(|r| (r.value, r.lat_ms))
                .unwrap_or((0.0, 0.0))
        };
        let (ci, cl) = get("community");
        let (ai, al) = get("afceph");
        println!(
            "{panel} @max VMs: community {ci:.0} IOPS @{cl:.1}ms vs afceph {ai:.0} IOPS @{al:.1}ms  ({:.1}x IOPS, {:.1}x latency)",
            ai / ci.max(1.0),
            cl / al.max(0.1),
        );
    }
}
