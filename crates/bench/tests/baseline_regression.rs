//! The baseline gate must catch a genuinely slowed cluster: a delay fault
//! on every node's journal device inflates the `journal` stage (and the
//! end-to-end numbers), and `compare` must flag it against a clean run.

use afc_bench::baseline::{compare, run_smoke, SmokeOpts, STAGES};
use afc_common::faults::{FaultKind, FaultPlan, FaultSpec};
use std::time::Duration;

const TEST_OPS: u64 = 400;

#[test]
fn delay_fault_is_detected_as_regression() {
    let clean = run_smoke(&SmokeOpts {
        ops: TEST_OPS,
        faults: None,
    });
    assert_eq!(clean.ops, TEST_OPS);
    assert_eq!(clean.stages.len(), STAGES.len());
    assert!(clean.iops > 0.0);
    assert!(
        clean.write_amplification >= 2.0,
        "replication 2 writes every byte at least twice (got {})",
        clean.write_amplification
    );

    // 5 ms on every journal-device write, on both nodes, forever.
    let mut plan = FaultPlan::new(0x5ee1);
    for node in 0..2 {
        plan = plan.with(
            FaultSpec::new(
                format!("node{node}.journal.write"),
                FaultKind::Delay(Duration::from_millis(5)),
            )
            .forever(),
        );
    }
    let slowed = run_smoke(&SmokeOpts {
        ops: TEST_OPS,
        faults: Some(plan),
    });

    let regressions = compare(&clean, &slowed, 0.20);
    assert!(
        !regressions.is_empty(),
        "a 5ms journal delay must trip the gate"
    );
    assert!(
        regressions.iter().any(|m| m.contains("journal")),
        "the journal stage must be among the flagged regressions: {regressions:?}"
    );

    // And the gate is not trigger-happy: a run compared against itself
    // passes at any tolerance.
    assert!(compare(&clean, &clean, 0.0).is_empty());
}
