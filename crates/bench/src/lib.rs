//! Shared harness for the figure-reproduction benchmarks.
//!
//! Every `benches/fig*.rs` target builds clusters through these helpers so
//! parameters, prefill behaviour and output format are consistent. Results
//! print as aligned tables and are also written as JSON under
//! `bench_results/` for re-plotting.
//!
//! Scaling: the harnesses run a reduced but *stated* version of the paper's
//! experiments (this host has one core; the paper had 4–16 servers). Set
//! `AFC_BENCH_SECS` to lengthen each measurement window and
//! `AFC_BENCH_VMS_MAX` to raise the fleet sizes.

pub mod baseline;
pub mod qos;

use afc_common::{BlockTarget, LatencyHist, Table, MIB};
use afc_core::{Cluster, DeviceProfile, OsdTuning, RbdImage};
use afc_workload::{JobSpec, Report};
use std::sync::Arc;
use std::time::Duration;

/// `git rev-parse --short HEAD`, or `"unknown"` outside a work tree;
/// stamped into every saved result row and baseline record so JSON files
/// are self-describing.
pub fn commit_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Per-run measurement window (seconds); `AFC_BENCH_SECS` overrides.
pub fn bench_secs() -> f64 {
    std::env::var("AFC_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0)
}

/// Largest VM-fleet size used by Figure 10/11; `AFC_BENCH_VMS_MAX` overrides.
pub fn vms_max() -> usize {
    std::env::var("AFC_BENCH_VMS_MAX")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16)
}

/// Standard bench cluster: paper shape at reduced PG count.
pub fn build_cluster(
    nodes: u32,
    osds_per_node: u32,
    tuning: OsdTuning,
    devices: DeviceProfile,
) -> Cluster {
    Cluster::builder()
        .nodes(nodes)
        .osds_per_node(osds_per_node)
        .replication(2)
        .pg_num(128)
        .tuning(tuning)
        .devices(devices)
        .build()
        .expect("cluster build")
}

/// Provision `n` VM images of `size` bytes each, prefilled so read
/// workloads hit real objects (the paper fills 80% of the disks; we fill
/// each image's whole span with 1 MiB sequential writes).
pub fn vm_images(cluster: &Cluster, n: usize, size: u64, prefill: bool) -> Vec<Arc<RbdImage>> {
    let images: Vec<Arc<RbdImage>> = (0..n)
        .map(|i| {
            Arc::new(
                cluster
                    .create_image(&format!("vm{i}"), size)
                    .expect("image"),
            )
        })
        .collect();
    if prefill {
        std::thread::scope(|s| {
            for img in &images {
                s.spawn(move || {
                    let buf = vec![0x5au8; MIB as usize];
                    let mut off = 0;
                    while off + MIB <= img.size() {
                        img.write_at(off, &buf).expect("prefill");
                        off += MIB;
                    }
                });
            }
        });
        cluster.quiesce();
    }
    images
}

/// Run one FIO job per image concurrently; merge into a fleet report.
pub fn run_fleet(images: &[Arc<RbdImage>], base: &JobSpec) -> Report {
    let mut reports: Vec<Report> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = images
            .iter()
            .enumerate()
            .map(|(i, img)| {
                let spec = base.clone().seed(base.seed ^ (i as u64) << 8);
                let img = Arc::clone(img);
                s.spawn(move || afc_workload::run(&spec, img.as_ref()))
            })
            .collect();
        for h in handles {
            reports.push(h.join().expect("fleet job"));
        }
    });
    merge_reports(reports, base)
}

/// Merge per-VM reports: ops sum, histograms merged, runtime = max.
pub fn merge_reports(reports: Vec<Report>, base: &JobSpec) -> Report {
    let mut lat = LatencyHist::new();
    let mut ops = 0;
    let mut errors = 0;
    let mut runtime = Duration::ZERO;
    let mut series = afc_common::TimeSeries::new();
    for r in &reports {
        lat.merge(&r.lat);
        ops += r.ops;
        errors += r.errors;
        runtime = runtime.max(r.runtime);
        for &(t, v) in r.series.points() {
            series.push(t, v);
        }
    }
    Report {
        ops,
        errors,
        runtime,
        bs: base.bs,
        lat,
        series,
        label: base.label.clone(),
    }
}

/// A row of figure output, serializable for re-plotting.
#[derive(Debug)]
pub struct FigRow {
    /// Series name (e.g. "community", "afceph", "solidfire").
    pub series: String,
    /// X value (threads, VMs, nodes, step index...).
    pub x: f64,
    /// IOPS (or MiB/s for sequential panels — see `unit`).
    pub value: f64,
    /// Mean latency in milliseconds.
    pub lat_ms: f64,
    /// p99 latency in milliseconds.
    pub p99_ms: f64,
    /// Unit of `value`.
    pub unit: String,
    /// OSD tuning profile label the row was measured under (e.g.
    /// "community", "afceph", "custom"). Defaults to the series name;
    /// override with [`FigRow::with_tuning`] when the series encodes
    /// something else (an ablation parameter, an rw mix, ...).
    pub tuning: String,
}

impl FigRow {
    /// Build a row from a fleet report.
    pub fn from_report(series: &str, x: f64, r: &Report, sequential: bool) -> FigRow {
        FigRow {
            series: series.to_string(),
            x,
            value: if sequential { r.mibps() } else { r.iops() },
            lat_ms: r.mean_lat().as_secs_f64() * 1e3,
            p99_ms: r.p99().as_secs_f64() * 1e3,
            unit: if sequential {
                "MiB/s".into()
            } else {
                "IOPS".into()
            },
            tuning: series.to_string(),
        }
    }

    /// Tag the row with the tuning profile it was measured under.
    #[must_use]
    pub fn with_tuning(mut self, tuning: &str) -> FigRow {
        self.tuning = tuning.to_string();
        self
    }
}

/// Print rows as an aligned table.
pub fn print_rows(title: &str, xlabel: &str, rows: &[FigRow]) {
    println!("\n== {title} ==");
    let mut t = Table::new(vec![
        "series", xlabel, "value", "unit", "lat(ms)", "p99(ms)",
    ]);
    for r in rows {
        t.row(vec![
            r.series.clone(),
            format!("{:.0}", r.x),
            format!("{:.0}", r.value),
            r.unit.clone(),
            format!("{:.2}", r.lat_ms),
            format!("{:.2}", r.p99_ms),
        ]);
    }
    t.print();
}

/// Persist rows as JSON under `bench_results/`.
pub fn save_rows(name: &str, rows: &[FigRow]) {
    // Workspace-root bench_results/ regardless of the bench target's cwd.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.join("bench_results");
    let dir = dir.as_path();
    let _ = std::fs::create_dir_all(dir);
    let path = dir.join(format!("{name}.json"));
    let s = rows_to_json(rows);
    if let Err(e) = std::fs::write(&path, s) {
        eprintln!("warn: could not write {}: {e}", path.display());
    } else {
        println!("(saved {})", path.display());
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_num(v: f64) -> String {
    // JSON has no NaN/Infinity; clamp to null-adjacent zero.
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

pub(crate) fn rows_to_json(rows: &[FigRow]) -> String {
    // Each record carries the commit and tuning profile so BENCH_*.json
    // files stay interpretable after the run that produced them.
    let commit = commit_hash();
    let mut s = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "  {{\n    \"series\": \"{}\",\n    \"x\": {},\n    \"value\": {},\n    \"lat_ms\": {},\n    \"p99_ms\": {},\n    \"unit\": \"{}\",\n    \"tuning\": \"{}\",\n    \"commit\": \"{}\"\n  }}{}\n",
            json_escape(&r.series),
            json_num(r.x),
            json_num(r.value),
            json_num(r.lat_ms),
            json_num(r.p99_ms),
            json_escape(&r.unit),
            json_escape(&r.tuning),
            json_escape(&commit),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push(']');
    s
}

/// The standard measurement job used by most figures.
pub fn fio(rw: afc_workload::Rw, bs: u64, iodepth: usize) -> JobSpec {
    JobSpec::new(rw)
        .bs(bs)
        .numjobs(1)
        .iodepth(iodepth)
        .runtime(Duration::from_secs_f64(bench_secs()))
        .seed(0xf10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_workload::Rw;

    #[test]
    fn fig_row_units() {
        let r = Report {
            ops: 1000,
            errors: 0,
            runtime: Duration::from_secs(1),
            bs: 4096,
            lat: LatencyHist::new(),
            series: afc_common::TimeSeries::new(),
            label: "x".into(),
        };
        let iops = FigRow::from_report("a", 1.0, &r, false);
        assert_eq!(iops.unit, "IOPS");
        assert!((iops.value - 1000.0).abs() < 1.0);
        let seq = FigRow::from_report("a", 1.0, &r, true);
        assert_eq!(seq.unit, "MiB/s");
        assert!(seq.value < iops.value);
    }

    #[test]
    fn merge_reports_sums() {
        let base = fio(Rw::RandWrite, 4096, 1);
        let mk = |ops| Report {
            ops,
            errors: 0,
            runtime: Duration::from_secs(2),
            bs: 4096,
            lat: LatencyHist::new(),
            series: afc_common::TimeSeries::new(),
            label: "x".into(),
        };
        let m = merge_reports(vec![mk(10), mk(20)], &base);
        assert_eq!(m.ops, 30);
        assert_eq!(m.runtime, Duration::from_secs(2));
    }

    #[test]
    fn env_defaults() {
        assert!(bench_secs() > 0.0);
        assert!(vms_max() > 0);
    }
}
