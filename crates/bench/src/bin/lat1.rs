//! Single-op latency decomposition probe (no load).

use afc_bench::{build_cluster, fio, run_fleet, vm_images};
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::Rw;
use std::time::Instant;

fn main() {
    let cluster = build_cluster(2, 2, OsdTuning::afceph(), DeviceProfile::clean());
    let images = vm_images(&cluster, 1, 16 * 1024 * 1024, false);
    // Warm up.
    let _ = run_fleet(&images, &fio(Rw::RandWrite, 4096, 1).io_limit(50));
    // Measure individual writes.
    let img = &images[0];
    use afc_common::BlockTarget;
    let buf = vec![1u8; 4096];
    for i in 0..10 {
        let t0 = Instant::now();
        img.write_at((i * 8192) % (8 << 20), &buf).unwrap();
        println!("write {i}: {:?}", t0.elapsed());
    }
    for (id, s) in cluster.osd_stats() {
        println!(
            "{id}: writes={} journal_batches={} avg_batch={:.2}",
            s.writes,
            s.journal.batches,
            s.journal.avg_batch()
        );
    }
    for s in cluster.osds()[0].stage_samples().iter().take(5) {
        println!("{s:?}");
    }
    cluster.shutdown();
}
