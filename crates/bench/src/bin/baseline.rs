//! Generate or check the committed performance baseline.
//!
//! ```text
//! cargo run --release -p afc-bench --bin baseline -- --write [path]
//! cargo run --release -p afc-bench --bin baseline -- --check [path]
//! cargo run --release -p afc-bench --bin baseline -- --write-degraded [path]
//! cargo run --release -p afc-bench --bin baseline -- --write-streams
//! ```
//!
//! With no mode flag the smoke workload runs and the record prints to
//! stdout. `path` defaults to `BENCH_baseline.json` at the workspace root.
//! `--check` exits non-zero when the fresh run regresses against the
//! committed record (see `afc_bench::baseline::compare`).
//!
//! `--write-degraded` records the kill-one-OSD smoke run into
//! `BENCH_degraded.json`. When that file exists, `--check` additionally
//! re-runs the degraded workload and prints the comparison — purely
//! informational: degraded throughput depends on failure-detection
//! timing, so it never affects the exit code.
//!
//! `--write-streams` runs the sustained-device overwrite workload twice —
//! multi-stream separation off, then on — prints both records side by
//! side, and saves the comparison to `bench_results/streams.json`.
//!
//! `--write-qos` runs the multi-tenant QoS fairness experiment (solo,
//! contended-with-QoS, contended-without) and saves
//! `bench_results/qos.json`; it exits non-zero when the fresh run fails
//! the isolation gate (protected p99 under contention within
//! `AFC_QOS_P99_FACTOR`× of solo). When `bench_results/qos.json` exists,
//! `--check` re-applies the same gate to the committed rows (no re-run),
//! so `cargo xtask bench-check` also guards the isolation claim.

use afc_bench::baseline::{self, SmokeOpts};
use afc_bench::qos;
use std::path::PathBuf;
use std::process::ExitCode;

fn default_path() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json")
}

fn default_degraded_path() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_degraded.json")
}

/// Informational only: compare a fresh degraded run against the committed
/// record, if one exists. Never changes the exit code.
fn report_degraded() {
    let path = default_degraded_path();
    let Ok(committed) = std::fs::read_to_string(&path) else {
        return; // no committed degraded record: nothing to report
    };
    let Some(committed) = baseline::parse(&committed) else {
        println!(
            "baseline: (degraded) {} is not a valid record — skipping",
            path.display()
        );
        return;
    };
    let current = baseline::run_degraded_smoke(&SmokeOpts {
        ops: committed.ops,
        faults: None,
    });
    println!(
        "baseline: (degraded, informational) committed {:.0} IOPS (commit {}), current {:.0} IOPS",
        committed.iops, committed.commit, current.iops
    );
    for note in baseline::compare(&committed, &current, baseline::tolerance()) {
        println!("baseline: (degraded, informational) {note}");
    }
}

fn default_qos_path() -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results/qos.json")
}

/// Gate the committed qos.json rows (no re-run). Returns regression
/// messages; warns (but passes) when the file is absent or empty, so
/// repositories that have not generated the figure yet still check clean.
fn check_qos() -> Vec<String> {
    let path = default_qos_path();
    let Ok(json) = std::fs::read_to_string(&path) else {
        println!(
            "baseline: (qos) no {} — run --write-qos to generate it",
            path.display()
        );
        return Vec::new();
    };
    let rows = qos::parse_rows(&json);
    if rows.is_empty() {
        println!("baseline: (qos) {} has no rows — skipping", path.display());
        return Vec::new();
    }
    let msgs = qos::gate_rows(&rows);
    if msgs.is_empty() {
        println!(
            "baseline: (qos) OK — protected p99 within {}× of solo (+{}ms) in committed qos.json",
            qos::p99_factor(),
            qos::p99_slack_ms()
        );
    }
    msgs
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    let path = args.get(1).map(PathBuf::from).unwrap_or_else(default_path);
    match mode {
        Some("--write") => {
            let record = baseline::run_smoke(&SmokeOpts::default());
            let json = baseline::to_json(&record);
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("baseline: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            print!("{json}");
            println!("(wrote {})", path.display());
            ExitCode::SUCCESS
        }
        Some("--check") => {
            let committed = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("baseline: cannot read {}: {e}", path.display());
                    eprintln!("baseline: run with --write to create it");
                    return ExitCode::FAILURE;
                }
            };
            let Some(committed) = baseline::parse(&committed) else {
                eprintln!(
                    "baseline: {} is not a valid {} record",
                    path.display(),
                    baseline::SCHEMA
                );
                return ExitCode::FAILURE;
            };
            let current = baseline::run_smoke(&SmokeOpts::default());
            let tol = baseline::tolerance();
            let regressions = baseline::compare(&committed, &current, tol);
            println!(
                "baseline: committed {:.0} IOPS (commit {}), current {:.0} IOPS",
                committed.iops, committed.commit, current.iops
            );
            for st in &current.stages {
                let b = committed.stages.iter().find(|b| b.stage == st.stage);
                println!(
                    "  {:<10} p50 {:>6}us  p95 {:>6}us  p99 {:>6}us  (baseline p95 {}us)",
                    st.stage,
                    st.p50_us,
                    st.p95_us,
                    st.p99_us,
                    b.map(|b| b.p95_us).unwrap_or(0),
                );
            }
            report_degraded();
            let qos_regressions = check_qos();
            if regressions.is_empty() && qos_regressions.is_empty() {
                println!("baseline: OK (tolerance {:.0}%)", tol * 100.0);
                ExitCode::SUCCESS
            } else {
                for r in regressions.iter().chain(&qos_regressions) {
                    eprintln!("baseline: REGRESSION: {r}");
                }
                ExitCode::FAILURE
            }
        }
        Some("--write-streams") => {
            let opts = SmokeOpts::default();
            let off = baseline::run_streams_smoke(false, &opts);
            let on = baseline::run_streams_smoke(true, &opts);
            println!(
                "baseline: multi-stream separation, sustained devices, {} ops:",
                off.ops
            );
            for r in [&off, &on] {
                let streams: Vec<String> = r
                    .stream_bytes
                    .iter()
                    .filter(|(_, b)| *b > 0)
                    .map(|(n, b)| format!("{n}={b}"))
                    .collect();
                println!(
                    "  {:<28} logical WA {:.2}  flash WA {:.3}  ({})",
                    r.tuning,
                    r.write_amplification,
                    r.flash_write_amplification,
                    streams.join(" "),
                );
            }
            let rows: Vec<afc_bench::FigRow> = [("streams_off", &off), ("streams_on", &on)]
                .into_iter()
                .enumerate()
                .map(|(i, (series, r))| afc_bench::FigRow {
                    series: series.to_string(),
                    x: i as f64,
                    value: r.flash_write_amplification,
                    lat_ms: 0.0,
                    p99_ms: 0.0,
                    unit: "flash_wa".to_string(),
                    tuning: r.tuning.clone(),
                })
                .collect();
            afc_bench::save_rows("streams", &rows);
            if on.flash_write_amplification < off.flash_write_amplification {
                println!(
                    "baseline: separation cut flash WA by {:.1}%",
                    (1.0 - on.flash_write_amplification / off.flash_write_amplification) * 100.0
                );
            } else {
                println!("baseline: WARNING: streams-on flash WA did not improve");
            }
            ExitCode::SUCCESS
        }
        Some("--write-qos") => {
            let rows = qos::run_fairness();
            afc_bench::print_rows("QoS fairness (4 KiB randwrite)", "noisy", &rows);
            afc_bench::save_rows("qos", &rows);
            let parsed: Vec<qos::QosRow> = rows
                .iter()
                .map(|r| qos::QosRow {
                    series: r.series.clone(),
                    value: r.value,
                    p99_ms: r.p99_ms,
                })
                .collect();
            let msgs = qos::gate_rows(&parsed);
            if msgs.is_empty() {
                println!(
                    "baseline: qos gate OK — protected p99 within {}× of solo (+{}ms host-noise allowance)",
                    qos::p99_factor(),
                    qos::p99_slack_ms()
                );
                ExitCode::SUCCESS
            } else {
                for m in &msgs {
                    eprintln!("baseline: QOS GATE: {m}");
                }
                ExitCode::FAILURE
            }
        }
        Some("--write-degraded") => {
            let path = args
                .get(1)
                .map(PathBuf::from)
                .unwrap_or_else(default_degraded_path);
            let record = baseline::run_degraded_smoke(&SmokeOpts::default());
            let json = baseline::to_json(&record);
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("baseline: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            print!("{json}");
            println!("(wrote {})", path.display());
            ExitCode::SUCCESS
        }
        None => {
            let record = baseline::run_smoke(&SmokeOpts::default());
            print!("{}", baseline::to_json(&record));
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!(
                "baseline: unknown mode '{other}' (expected --write, --check, --write-degraded, --write-streams or --write-qos)"
            );
            ExitCode::from(2)
        }
    }
}
