//! Quick calibration probe: community vs AFCeph, 4K random write/read.
//!
//! Not a paper figure — a fast sanity check that the modeled bottlenecks
//! produce the expected ordering before running the full harnesses.
//! Run: `cargo run --release -p afc-bench --bin probe`

use afc_bench::{build_cluster, fio, run_fleet, vm_images};
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::Rw;

fn main() {
    let vms = 12;
    for (name, tuning) in [
        ("community", OsdTuning::community()),
        ("afceph", OsdTuning::afceph()),
    ] {
        let cluster = build_cluster(4, 2, tuning, DeviceProfile::sustained());
        let images = vm_images(&cluster, vms, 64 * 1024 * 1024, true);
        let w = run_fleet(&images, &fio(Rw::RandWrite, 4096, 4).label("4k-randwrite"));
        println!("{name:10} write: {w}");
        let r = run_fleet(&images, &fio(Rw::RandRead, 4096, 4).label("4k-randread"));
        println!("{name:10} read : {r}");
        let osd0 = &cluster.osd_stats()[0].1;
        println!(
            "{name:10} osd0: pg_lock_wait={}ms log_wait={}ms throttle_wait={}ms meta_reads={} j_full_stalls={}",
            osd0.pg_lock_wait_us / 1000,
            osd0.log_wait_us / 1000,
            osd0.filestore.throttle_wait_us / 1000 + osd0.client_throttle_wait_us / 1000,
            osd0.filestore.meta_reads,
            osd0.journal.full_stalls,
        );
        cluster.shutdown();
    }
}
