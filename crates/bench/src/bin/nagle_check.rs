//! Debug probe: is Nagle actually binding on the community write path?

use afc_bench::{build_cluster, fio, run_fleet, vm_images};
use afc_core::{DeviceProfile, OsdTuning};
use afc_workload::Rw;

fn main() {
    for (name, tuning) in [
        ("community(nagle)", OsdTuning::community()),
        (
            "community(no-nagle)",
            OsdTuning {
                nagle: false,
                ..OsdTuning::community()
            },
        ),
    ] {
        let cluster = build_cluster(2, 2, tuning, DeviceProfile::clean());
        let images = vm_images(&cluster, 2, 32 << 20, true);
        let r = run_fleet(&images, &fio(Rw::RandWrite, 4096, 1).label(name));
        let c = cluster.network().counters();
        println!(
            "{name}: {r}\n  net.msgs={} net.nagled={} ",
            c.get("net.msgs"),
            c.get("net.nagled")
        );
        cluster.shutdown();
    }
}
