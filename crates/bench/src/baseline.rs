//! Machine-readable performance baseline (`BENCH_baseline.json`).
//!
//! A short deterministic smoke workload runs against a small cluster and
//! distils the metric snapshot into a [`BaselineRecord`]: IOPS, write
//! amplification, and p50/p95/p99 per write-path stage (the Figure 3
//! breakdown, aggregated across OSDs). The record round-trips through a
//! stable JSON encoding so a committed baseline can gate regressions:
//! `cargo xtask bench-check` re-runs the smoke workload and fails when any
//! stage (or IOPS, or write amplification) regresses by more than the
//! tolerance against the committed file.
//!
//! The workload is deterministic (fixed op count, object layout and write
//! pattern); wall-clock numbers still vary run to run, which is why
//! [`compare`] applies both a relative tolerance and a small absolute
//! slack per stage.

use afc_common::faults::FaultPlan;
use afc_common::metrics::HistSnapshot;
use afc_common::OsdId;
use afc_core::{Cluster, DeviceProfile, OsdTuning};
use std::time::{Duration, Instant};

/// Schema tag written into every baseline record. `/2` added device-level
/// flash write amplification and per-stream byte counters; `/1` records
/// no longer parse, forcing regeneration.
pub const SCHEMA: &str = "afc-bench-baseline/2";

/// Per-stream byte counters captured per record, in [`afc_device::StreamId`]
/// index order (the `osdN.data.stream.<name>.bytes` metric names).
pub const STREAM_NAMES: [&str; 6] = ["journal", "kv_wal", "kv_compaction", "meta", "hot", "cold"];

/// Write-path stages captured per record, in pipeline order. These are the
/// `osdN.stage.*` histogram names from the cluster metric registry.
pub const STAGES: [&str; 7] = [
    "messenger",
    "pg_queue",
    "submit",
    "journal",
    "apply",
    "ack",
    "total",
];

/// Relative regression tolerance (`AFC_BENCH_TOLERANCE` overrides).
pub fn tolerance() -> f64 {
    std::env::var("AFC_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.20)
}

/// Absolute per-stage slack in µs: stages cheaper than this can double
/// without tripping the gate, keeping sub-scheduler-quantum stages from
/// flapping the check.
pub const STAGE_SLACK_US: u64 = 200;

/// Stages whose *median* is additionally gated. The group-commit and
/// sharded-completion work lives or dies at the median — a p95 gate with
/// 200µs slack would let the common case quietly give back the win — so
/// the journal commit and ack stages get an individual p50 ceiling with
/// a much tighter absolute slack.
pub const P50_GATED_STAGES: [&str; 2] = ["journal", "ack"];

/// Absolute slack for the p50 gates, µs (one scheduler quantum of noise,
/// not twenty).
pub const P50_SLACK_US: u64 = 50;

/// Latency quantiles of one write-path stage, µs.
#[derive(Debug, Clone, PartialEq)]
pub struct StageQuantiles {
    /// Stage name (one of [`STAGES`]).
    pub stage: String,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
}

/// One self-describing baseline measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRecord {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// `git rev-parse --short HEAD` at measurement time (or `"unknown"`).
    pub commit: String,
    /// Tuning profile label the smoke cluster ran with.
    pub tuning: String,
    /// Client write ops issued.
    pub ops: u64,
    /// Client-observed write IOPS over the whole run.
    pub iops: f64,
    /// (data-SSD bytes + journal-device bytes) / client payload bytes.
    pub write_amplification: f64,
    /// Device-level WA on the data SSDs: (host bytes + GC copy-forward
    /// bytes) / host bytes, summed over every data device. 1.0 when the
    /// FTL never collected (clean drives).
    pub flash_write_amplification: f64,
    /// Host bytes per write stream across all data SSDs, in
    /// [`STREAM_NAMES`] order.
    pub stream_bytes: Vec<(String, u64)>,
    /// Per-stage latency quantiles, aggregated across every OSD.
    pub stages: Vec<StageQuantiles>,
}

/// Parameters of the smoke run.
#[derive(Debug, Clone)]
pub struct SmokeOpts {
    /// Client write ops to issue (`AFC_SMOKE_OPS` overrides the default
    /// 2000 when built via [`Default`]).
    pub ops: u64,
    /// Optional fault plan, for regression-detection tests.
    pub faults: Option<FaultPlan>,
}

impl Default for SmokeOpts {
    fn default() -> Self {
        SmokeOpts {
            ops: std::env::var("AFC_SMOKE_OPS")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(2000),
            faults: None,
        }
    }
}

const SMOKE_BS: u64 = 4096;
const SMOKE_OBJECTS: u64 = 32;

/// Run the deterministic smoke workload and distil a [`BaselineRecord`].
///
/// Shape: 2 nodes × 2 OSDs, replication 2, 64 PGs, `afceph` tuning, clean
/// devices. The client issues `opts.ops` sequential-per-object 4 KiB
/// writes round-robined over 32 objects, quiesces, then reads the metric
/// snapshot.
pub fn run_smoke(opts: &SmokeOpts) -> BaselineRecord {
    let tuning = OsdTuning::afceph();
    let tuning_label = tuning.label().to_string();
    let mut builder = Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(64)
        .tuning(tuning)
        .devices(DeviceProfile::clean());
    if let Some(plan) = &opts.faults {
        builder = builder.faults(plan.clone());
    }
    let cluster = builder.build().expect("smoke cluster build");
    let client = cluster.client().expect("smoke client");
    let buf = vec![0xb5u8; SMOKE_BS as usize];
    let start = Instant::now();
    for i in 0..opts.ops {
        let obj = format!("smoke{}", i % SMOKE_OBJECTS);
        let off = (i / SMOKE_OBJECTS) * SMOKE_BS;
        client.write_object(&obj, off, &buf).expect("smoke write");
    }
    cluster.quiesce();
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let snap = cluster.metrics_snapshot();
    cluster.shutdown();
    distill(&snap, &tuning_label, opts.ops, elapsed)
}

/// Run the multi-stream comparison smoke workload: same cluster shape as
/// [`run_smoke`] but on **sustained** (pre-aged) devices, with
/// `streams_enabled` forced to `streams` on top of the `afceph` profile.
///
/// The write pattern differs from the baseline smoke run on purpose:
/// even-numbered ops sweep a *large* object set round-robin (each object
/// rewritten once per lap, far apart in time and under the filestore's
/// hot-write threshold) while odd-numbered ops hammer a small hot set
/// the heat tracker promotes. The cold lap mimics how long-lived data
/// actually dies on this stack — in bulk, in allocation order, when the
/// next compaction/rewrite pass supersedes it. Separated, both lifetimes
/// retire whole erase blocks and GC rides free victims; mixed, each
/// block holds sequential cold pages plus scattered hot pages whose
/// deaths never line up, so blocks strand at partial validity and every
/// GC pass drags survivors forward — the pathology separation fixes.
/// The op count is scaled 8x over `opts.ops` and the FTL window shrunk
/// so the workload laps the representative flash span several times;
/// the separated groups need whole-block turnover to reach steady state
/// before the per-group open-block overhead is amortized.
pub fn run_streams_smoke(streams: bool, opts: &SmokeOpts) -> BaselineRecord {
    let tuning = OsdTuning {
        streams_enabled: streams,
        ..OsdTuning::afceph()
    };
    let tuning_label = format!(
        "{}+sustained+streams_{}",
        tuning.label(),
        if streams { "on" } else { "off" }
    );
    // One OSD, replication 1: all traffic lands on three member SSDs, so
    // the run laps each FTL span several times. Large erase blocks make
    // lifetime mixing expensive (the real-drive regime); the deep OP pool
    // keeps the per-group open-block tax (`groups / OP-blocks`) modest.
    let mut devices = DeviceProfile::sustained();
    devices.ssd.ftl = afc_device::FtlConfig {
        pages_per_block: 64,
        blocks: 96,
        op_ratio: 0.22,
        ..afc_device::FtlConfig::default()
    };
    let cluster = Cluster::builder()
        .nodes(1)
        .osds_per_node(1)
        .replication(1)
        .pg_num(64)
        .tuning(tuning)
        .devices(devices)
        .build()
        .expect("streams smoke cluster build");
    let client = cluster.client().expect("streams smoke client");
    let ops = opts.ops * 16;
    // Sized so a cold object sees ~2 writes over the whole run — any
    // closer to the filestore's hot-write threshold and the tail of the
    // cold sweep gets promoted, smearing cold-lifetime pages into the
    // hot stream.
    const HOT_OBJECTS: u64 = 32;
    const COLD_OBJECTS: u64 = 8192;
    // SplitMix64: deterministic stand-in for a uniform random pick.
    let mix = |mut x: u64| {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    };
    let buf = vec![0xb5u8; SMOKE_BS as usize];
    let start = Instant::now();
    for i in 0..ops {
        let (obj, off) = if i % 2 == 0 {
            // Cold: round-robin lap over the whole set (~2 laps per run),
            // one page per visit — long-lived pages that die in bulk, in
            // allocation order, when the next lap supersedes them. Stays
            // under the heat threshold.
            let n = i / 2;
            (format!("cold{}", n % COLD_OBJECTS), 0)
        } else {
            // Hot: ~125 overwrites per object, random page in the first
            // 64 KiB.
            (
                format!("hot{}", mix(i) % HOT_OBJECTS),
                (mix(i ^ 0x5eed) % 16) * SMOKE_BS,
            )
        };
        client
            .write_object(&obj, off, &buf)
            .expect("streams smoke write");
    }
    cluster.quiesce();
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let snap = cluster.metrics_snapshot();
    cluster.shutdown();
    distill(&snap, &tuning_label, ops, elapsed)
}

/// Run the degraded-mode smoke workload: same shape and write pattern as
/// [`run_smoke`], but with heartbeats on and one OSD killed (paused)
/// halfway through. The client keeps writing across failure detection,
/// promotion and degraded replication; the record therefore measures
/// whole-run throughput *including* the detection stall and the degraded
/// tail. After the workload the OSD is revived and the run waits for
/// recovery to drain before reading the metric snapshot.
///
/// The resulting `BENCH_degraded.json` is informational: it is compared
/// (and printed) by `cargo xtask bench-check` but never gates, because
/// degraded-mode throughput depends on detection timing, not just on the
/// write path.
pub fn run_degraded_smoke(opts: &SmokeOpts) -> BaselineRecord {
    let tuning = OsdTuning {
        rep_resend_after_ms: 20,
        heartbeat_grace_ms: 40,
        ..OsdTuning::afceph().with_heartbeats(5)
    };
    let tuning_label = format!("{}+degraded", tuning.label());
    let mut builder = Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(64)
        .tuning(tuning)
        .devices(DeviceProfile::clean());
    if let Some(plan) = &opts.faults {
        builder = builder.faults(plan.clone());
    }
    let cluster = builder.build().expect("degraded smoke cluster build");
    let client = cluster.client().expect("degraded smoke client");
    client.set_op_timeout(Duration::from_millis(400));
    client.set_max_retries(24);
    let victim = OsdId(1);
    let buf = vec![0xb5u8; SMOKE_BS as usize];
    let start = Instant::now();
    for i in 0..opts.ops {
        if i == opts.ops / 2 {
            cluster.osd(victim).expect("victim exists").pause();
        }
        let obj = format!("smoke{}", i % SMOKE_OBJECTS);
        let off = (i / SMOKE_OBJECTS) * SMOKE_BS;
        client
            .write_object(&obj, off, &buf)
            .expect("degraded smoke write");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    // Revive and let recovery drain so the snapshot includes the full
    // peering/recovery counter story, not a mid-flight cut.
    cluster.osd(victim).expect("victim exists").resume();
    let deadline = Instant::now() + Duration::from_secs(20);
    while Instant::now() < deadline {
        let snap = cluster.metrics_snapshot();
        let busy: i64 = cluster
            .osds()
            .iter()
            .map(|o| {
                let n = o.id().0;
                [
                    "recovery.pgs_degraded",
                    "recovery.pgs_recovering",
                    "peering.pgs_peering",
                ]
                .iter()
                .map(|g| snap.gauge(&format!("osd{n}.{g}")).unwrap_or(0))
                .sum::<i64>()
            })
            .sum();
        if busy == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.quiesce();
    let snap = cluster.metrics_snapshot();
    cluster.shutdown();
    distill(&snap, &tuning_label, opts.ops, elapsed)
}

/// Distil a metric snapshot into a [`BaselineRecord`].
fn distill(
    snap: &afc_common::metrics::MetricsSnapshot,
    tuning_label: &str,
    ops: u64,
    elapsed: f64,
) -> BaselineRecord {
    // Device-side bytes: every RAID-0 data member sums under
    // `osdN.data.bytes_written`; the per-node NVRAM card under
    // `nodeN.journal.dev.bytes_written`.
    let sum_counters = |pred: &dyn Fn(&str) -> bool| -> u64 {
        snap.iter()
            .filter_map(|(id, v)| match v {
                afc_common::metrics::MetricValue::Counter(c) if pred(id.name()) => Some(*c),
                _ => None,
            })
            .sum()
    };
    let data_bytes = sum_counters(&|n| n.starts_with("osd") && n.ends_with(".data.bytes_written"));
    let journal_bytes =
        sum_counters(&|n| n.starts_with("node") && n.ends_with(".journal.dev.bytes_written"));
    let payload = (ops * SMOKE_BS) as f64;
    let write_amplification = (data_bytes + journal_bytes) as f64 / payload;

    // Device-level WA: flash writes / host writes on the data SSDs. The
    // FTL bills copy-forward into `gc.copied_bytes`; on a clean drive
    // that never collects this is exactly 1.0.
    let gc_copied = sum_counters(&|n| n.starts_with("osd") && n.ends_with(".data.gc.copied_bytes"));
    let flash_write_amplification = if data_bytes == 0 {
        1.0
    } else {
        (data_bytes + gc_copied) as f64 / data_bytes as f64
    };
    let stream_bytes = STREAM_NAMES
        .iter()
        .map(|name| {
            let suffix = format!(".data.stream.{name}.bytes");
            (
                name.to_string(),
                sum_counters(&|n| n.starts_with("osd") && n.ends_with(&suffix)),
            )
        })
        .collect();

    let stages = STAGES
        .iter()
        .map(|stage| {
            let suffix = format!(".stage.{stage}");
            let mut merged = HistSnapshot {
                buckets: Vec::new(),
                count: 0,
                sum_us: 0,
            };
            for (id, v) in snap.iter() {
                if let afc_common::metrics::MetricValue::Histogram(h) = v {
                    if id.name().ends_with(&suffix) {
                        merged.merge(h);
                    }
                }
            }
            StageQuantiles {
                stage: stage.to_string(),
                p50_us: merged.p50_us(),
                p95_us: merged.p95_us(),
                p99_us: merged.p99_us(),
            }
        })
        .collect();

    BaselineRecord {
        schema: SCHEMA.to_string(),
        commit: crate::commit_hash(),
        tuning: tuning_label.to_string(),
        ops,
        iops: ops as f64 / elapsed,
        write_amplification,
        flash_write_amplification,
        stream_bytes,
        stages,
    }
}

/// Compare `current` against `baseline`; returns one message per detected
/// regression (empty = pass).
///
/// Gates, with relative tolerance `tol` (see [`tolerance`]):
///
/// - IOPS must not drop below `baseline × (1 − tol)`.
/// - Write amplification must not exceed `baseline × (1 + tol) + 0.1`.
/// - Device-level flash write amplification must not exceed
///   `baseline × (1 + tol) + 0.1` (same shape: a ceiling with absolute
///   slack, so the clean-drive 1.0 floor doesn't make the gate vacuous).
/// - Every stage's p95 must not exceed
///   `baseline × (1 + tol) + STAGE_SLACK_US`.
/// - The [`P50_GATED_STAGES`] stages' p50 must not exceed
///   `baseline × (1 + tol) + P50_SLACK_US`.
pub fn compare(baseline: &BaselineRecord, current: &BaselineRecord, tol: f64) -> Vec<String> {
    let mut out = Vec::new();
    let floor = baseline.iops * (1.0 - tol);
    if current.iops < floor {
        out.push(format!(
            "iops regressed: {:.0} < {:.0} (baseline {:.0}, tol {:.0}%)",
            current.iops,
            floor,
            baseline.iops,
            tol * 100.0
        ));
    }
    let wa_ceiling = baseline.write_amplification * (1.0 + tol) + 0.1;
    if current.write_amplification > wa_ceiling {
        out.push(format!(
            "write amplification regressed: {:.2} > {:.2} (baseline {:.2})",
            current.write_amplification, wa_ceiling, baseline.write_amplification
        ));
    }
    let flash_ceiling = baseline.flash_write_amplification * (1.0 + tol) + 0.1;
    if current.flash_write_amplification > flash_ceiling {
        out.push(format!(
            "flash write amplification regressed: {:.2} > {:.2} (baseline {:.2})",
            current.flash_write_amplification, flash_ceiling, baseline.flash_write_amplification
        ));
    }
    for b in &baseline.stages {
        let Some(c) = current.stages.iter().find(|c| c.stage == b.stage) else {
            out.push(format!("stage {} missing from current run", b.stage));
            continue;
        };
        let ceiling = (b.p95_us as f64 * (1.0 + tol)) as u64 + STAGE_SLACK_US;
        if c.p95_us > ceiling {
            out.push(format!(
                "stage {} p95 regressed: {}us > {}us (baseline {}us, tol {:.0}% + {}us)",
                b.stage,
                c.p95_us,
                ceiling,
                b.p95_us,
                tol * 100.0,
                STAGE_SLACK_US
            ));
        }
        if P50_GATED_STAGES.contains(&b.stage.as_str()) {
            let p50_ceiling = (b.p50_us as f64 * (1.0 + tol)) as u64 + P50_SLACK_US;
            if c.p50_us > p50_ceiling {
                out.push(format!(
                    "stage {} p50 regressed: {}us > {}us (baseline {}us, tol {:.0}% + {}us)",
                    b.stage,
                    c.p50_us,
                    p50_ceiling,
                    b.p50_us,
                    tol * 100.0,
                    P50_SLACK_US
                ));
            }
        }
    }
    out
}

/// Encode a record as pretty-printed JSON (stable key order, one stage
/// object per line — the format [`parse`] understands).
pub fn to_json(r: &BaselineRecord) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        crate::json_escape(&r.schema)
    ));
    s.push_str(&format!(
        "  \"commit\": \"{}\",\n",
        crate::json_escape(&r.commit)
    ));
    s.push_str(&format!(
        "  \"tuning\": \"{}\",\n",
        crate::json_escape(&r.tuning)
    ));
    s.push_str(&format!("  \"ops\": {},\n", r.ops));
    s.push_str(&format!("  \"iops\": {},\n", crate::json_num(r.iops)));
    s.push_str(&format!(
        "  \"write_amplification\": {},\n",
        crate::json_num(r.write_amplification)
    ));
    s.push_str(&format!(
        "  \"flash_write_amplification\": {},\n",
        crate::json_num(r.flash_write_amplification)
    ));
    s.push_str("  \"stream_bytes\": [\n");
    for (i, (name, bytes)) in r.stream_bytes.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"stream\": \"{}\", \"bytes\": {}}}{}\n",
            crate::json_escape(name),
            bytes,
            if i + 1 == r.stream_bytes.len() {
                ""
            } else {
                ","
            },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"stages\": [\n");
    for (i, st) in r.stages.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"stage\": \"{}\", \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}{}\n",
            crate::json_escape(&st.stage),
            st.p50_us,
            st.p95_us,
            st.p99_us,
            if i + 1 == r.stages.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Parse the JSON written by [`to_json`]. Line-oriented: top-level fields
/// one per line, stage objects one per line. Returns `None` on any missing
/// field or schema mismatch.
pub fn parse(s: &str) -> Option<BaselineRecord> {
    let mut schema = None;
    let mut commit = None;
    let mut tuning = None;
    let mut ops = None;
    let mut iops = None;
    let mut wa = None;
    let mut flash_wa = None;
    let mut stream_bytes = Vec::new();
    let mut stages = Vec::new();
    for line in s.lines() {
        let line = line.trim();
        if line.contains("\"stream\":") {
            stream_bytes.push((field_str(line, "stream")?, field_num(line, "bytes")? as u64));
        } else if line.contains("\"stage\":") {
            stages.push(StageQuantiles {
                stage: field_str(line, "stage")?,
                p50_us: field_num(line, "p50_us")? as u64,
                p95_us: field_num(line, "p95_us")? as u64,
                p99_us: field_num(line, "p99_us")? as u64,
            });
        } else if line.starts_with("\"schema\"") {
            schema = field_str(line, "schema");
        } else if line.starts_with("\"commit\"") {
            commit = field_str(line, "commit");
        } else if line.starts_with("\"tuning\"") {
            tuning = field_str(line, "tuning");
        } else if line.starts_with("\"ops\"") {
            ops = field_num(line, "ops").map(|v| v as u64);
        } else if line.starts_with("\"iops\"") {
            iops = field_num(line, "iops");
        } else if line.starts_with("\"flash_write_amplification\"") {
            flash_wa = field_num(line, "flash_write_amplification");
        } else if line.starts_with("\"write_amplification\"") {
            wa = field_num(line, "write_amplification");
        }
    }
    let schema = schema?;
    if schema != SCHEMA {
        return None;
    }
    Some(BaselineRecord {
        schema,
        commit: commit?,
        tuning: tuning?,
        ops: ops?,
        iops: iops?,
        write_amplification: wa?,
        flash_write_amplification: flash_wa?,
        stream_bytes,
        stages,
    })
}

/// Extract the string value of `"key": "..."` from `line`.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract the numeric value of `"key": <num>` from `line`.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BaselineRecord {
        BaselineRecord {
            schema: SCHEMA.into(),
            commit: "abc1234".into(),
            tuning: "afceph".into(),
            ops: 2000,
            iops: 5123.75,
            write_amplification: 2.31,
            flash_write_amplification: 1.27,
            stream_bytes: STREAM_NAMES
                .iter()
                .enumerate()
                .map(|(i, n)| (n.to_string(), 1000 * (i as u64 + 1)))
                .collect(),
            stages: STAGES
                .iter()
                .enumerate()
                .map(|(i, s)| StageQuantiles {
                    stage: s.to_string(),
                    p50_us: 10 * (i as u64 + 1),
                    p95_us: 20 * (i as u64 + 1),
                    p99_us: 30 * (i as u64 + 1),
                })
                .collect(),
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let r = record();
        let parsed = parse(&to_json(&r)).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_other_schemas() {
        let json = to_json(&record()).replace(SCHEMA, "afc-bench-baseline/99");
        assert!(parse(&json).is_none());
    }

    #[test]
    fn compare_passes_identical_runs() {
        let r = record();
        assert!(compare(&r, &r, 0.20).is_empty());
    }

    #[test]
    fn compare_gates_flash_write_amplification() {
        let base = record();
        let mut cur = record();
        // Fixture flash WA is 1.27: ceiling = 1.27 * 1.2 + 0.1 = 1.624.
        cur.flash_write_amplification = 1.62;
        assert!(compare(&base, &cur, 0.20).is_empty());
        cur.flash_write_amplification = 1.70;
        let msgs = compare(&base, &cur, 0.20);
        assert!(
            msgs.iter()
                .any(|m| m.starts_with("flash write amplification regressed")),
            "{msgs:?}"
        );
    }

    #[test]
    fn compare_flags_iops_and_stage_regressions() {
        let base = record();
        let mut cur = record();
        cur.iops = base.iops * 0.5;
        cur.stages[3].p95_us = base.stages[3].p95_us * 10 + 10_000; // journal
        let msgs = compare(&base, &cur, 0.20);
        assert!(msgs.iter().any(|m| m.starts_with("iops regressed")));
        assert!(msgs.iter().any(|m| m.contains("stage journal")));
    }

    #[test]
    fn compare_gates_journal_and_ack_medians() {
        let base = record();
        let mut cur = record();
        // journal p50 is 40 in the fixture; 40*1.2 + 50 = 98 is the ceiling.
        cur.stages[3].p50_us = 99; // journal
        let msgs = compare(&base, &cur, 0.20);
        assert!(
            msgs.iter().any(|m| m.contains("stage journal p50")),
            "{msgs:?}"
        );
        // ack p50 is 60: 60*1.2 + 50 = 122.
        let mut cur = record();
        cur.stages[5].p50_us = 122; // at the ceiling: pass
        assert!(compare(&base, &cur, 0.20).is_empty());
        cur.stages[5].p50_us = 123;
        let msgs = compare(&base, &cur, 0.20);
        assert!(msgs.iter().any(|m| m.contains("stage ack p50")), "{msgs:?}");
        // Non-gated stages may move their p50 freely (p95 still gated).
        let mut cur = record();
        cur.stages[2].p50_us = 10_000; // submit
        assert!(compare(&base, &cur, 0.20).is_empty());
    }

    #[test]
    fn compare_allows_small_noise() {
        let base = record();
        let mut cur = record();
        cur.iops = base.iops * 0.9;
        for s in &mut cur.stages {
            s.p95_us = (s.p95_us as f64 * 1.1) as u64 + 50;
        }
        assert!(compare(&base, &cur, 0.20).is_empty());
    }
}
