//! Multi-tenant QoS fairness benchmark (`bench_results/qos.json`).
//!
//! The SolidFire pitch is that a latency-sensitive tenant keeps its
//! guaranteed IOPS — and a sane p99 — no matter how many noisy neighbors
//! share the cluster. This harness measures exactly that, three phases on
//! identical fresh clusters:
//!
//! 1. **`protected_solo`** — the protected tenant alone, QoS on. The
//!    uncontended reference numbers.
//! 2. **`protected_qos` / `noisy_qos`** — the protected tenant (volume
//!    opened with a `min_iops` reservation) against [`NOISY_TENANTS`]
//!    best-effort neighbors, each on its own volume capped by
//!    [`NOISY_SPEC`] (the SolidFire model: every volume has min/max/burst),
//!    QoS on.
//! 3. **`protected_noqos` / `noisy_noqos`** — the identical tenants and
//!    volumes with `qos_enabled` off, so the same offered load runs
//!    unshaped: the ungated gap the scheduler closes, kept in the same
//!    JSON so the file tells the whole story.
//!
//! All jobs are seed-pinned 4 KiB random writes through
//! [`afc_workload::run_tenants`], so runs are comparable. The gate
//! ([`gate_rows`]): contended protected p99 must stay within
//! [`p99_factor`]× of solo protected p99 plus an absolute
//! [`p99_slack_ms`] allowance (the same ratio-plus-absolute-slack design
//! as the baseline stage gates, and for the same reason: solo p99 on the
//! 1-core CI host is a quiet-box number in the hundreds of µs, and the
//! mere presence of neighbor *threads* — measured with near-idle,
//! 50-IOPS-capped neighbors — adds ~2 ms of wakeup-scheduling noise the
//! op-queue scheduler cannot see). QoS-on must also strictly beat the
//! qos-off arm. `cargo xtask bench-check` applies the same gates to the
//! committed `bench_results/qos.json`.

use crate::FigRow;
use afc_core::{Cluster, DeviceProfile, OsdTuning, QosSpec};
use afc_workload::{JobSpec, Report, Rw, Tenant};
use std::sync::Arc;
use std::time::Duration;

/// Best-effort neighbors in the contended phases.
pub const NOISY_TENANTS: usize = 4;

/// The protected tenant's contract: a 1500-IOPS floor, no ceiling. The
/// smoke cluster sustains a few thousand IOPS, so the floor is a real
/// claim on capacity without being unsatisfiable.
pub const PROTECTED_SPEC: QosSpec = QosSpec {
    min_iops: 1500,
    max_iops: 0,
    burst: 0,
};

/// Each noisy neighbor's contract: no floor, a 150-IOPS ceiling with a
/// small burst. This is the SolidFire model — *every* volume carries
/// min/max/burst, and the max on best-effort volumes is what bounds the
/// queue depths the protected tenant's ops ride behind. The ceiling is
/// enforced per primary OSD, so a volume striped over two PG primaries
/// can reach up to 2× this aggregate; 4 neighbors stay well under
/// cluster capacity (~4K IOPS) either way. The small burst keeps token
/// refills from releasing dispatch bursts into the shared journal. The
/// qos-off phases reuse the same volumes with the scheduler disabled, so
/// the identical offered load runs uncapped.
pub const NOISY_SPEC: QosSpec = QosSpec {
    min_iops: 0,
    max_iops: 150,
    burst: 4,
};

/// Measurement window per phase, seconds (`AFC_QOS_SECS` overrides).
/// Long enough that the p99 rests on thousands of protected ops; short
/// enough that the three phases fit a CI merge gate.
pub fn qos_secs() -> f64 {
    std::env::var("AFC_QOS_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0)
}

/// Allowed contended-p99 inflation over solo p99
/// (`AFC_QOS_P99_FACTOR` overrides).
pub fn p99_factor() -> f64 {
    std::env::var("AFC_QOS_P99_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0)
}

/// Absolute allowance added on top of the ratio ceiling, milliseconds
/// (`AFC_QOS_P99_SLACK_MS` overrides). Calibrated to the 1-core host's
/// thread-wakeup noise floor: with four *near-idle* capped neighbors
/// (50 IOPS, iodepth 1) the protected p99 already sits ~2 ms above solo
/// before any interference the op-queue scheduler could control.
pub fn p99_slack_ms() -> f64 {
    std::env::var("AFC_QOS_P99_SLACK_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0)
}

const IMAGE_SIZE: u64 = 8 * afc_common::MIB;

fn qos_cluster(qos_enabled: bool) -> Cluster {
    let tuning = OsdTuning {
        qos_enabled,
        ..OsdTuning::afceph()
    };
    Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(64)
        .tuning(tuning)
        .devices(DeviceProfile::clean())
        .build()
        .expect("qos bench cluster build")
}

fn protected_job() -> JobSpec {
    JobSpec::new(Rw::RandWrite)
        .bs(4096)
        .numjobs(1)
        .iodepth(1)
        .runtime(Duration::from_secs_f64(qos_secs()))
        .seed(0x0905)
        .label("protected")
}

fn noisy_job(i: usize) -> JobSpec {
    JobSpec::new(Rw::RandWrite)
        .bs(4096)
        .numjobs(1)
        .iodepth(4)
        .runtime(Duration::from_secs_f64(qos_secs()))
        .seed(0xb0_5e ^ ((i as u64) << 8))
        .label(format!("noisy{i}"))
}

/// One contended phase: the protected tenant (reserved volume) plus
/// [`NOISY_TENANTS`] untagged neighbors on a fresh cluster. Returns
/// `(protected report, merged noisy report, reservation dispatches)`.
fn contended_phase(qos_enabled: bool) -> (Report, Report, u64) {
    let cluster = qos_cluster(qos_enabled);
    let protected_client = cluster.open_volume(PROTECTED_SPEC).expect("open volume");
    let protected_img = Arc::new(
        afc_core::RbdImage::new(protected_client, "prot", IMAGE_SIZE).expect("protected image"),
    );
    let noisy_imgs: Vec<Arc<afc_core::RbdImage>> = (0..NOISY_TENANTS)
        .map(|i| {
            let client = cluster.open_volume(NOISY_SPEC).expect("open noisy volume");
            Arc::new(
                afc_core::RbdImage::new(client, format!("noisy{i}"), IMAGE_SIZE)
                    .expect("noisy image"),
            )
        })
        .collect();
    let mut tenants = vec![Tenant::new(protected_job(), protected_img.as_ref())];
    for (i, img) in noisy_imgs.iter().enumerate() {
        tenants.push(Tenant::new(noisy_job(i), img.as_ref()));
    }
    let mut reports = afc_workload::run_tenants(&tenants);
    let protected = reports.remove(0);
    let noisy = crate::merge_reports(reports, &noisy_job(0).label("noisy"));
    let snap = cluster.metrics_snapshot();
    let reserved: u64 = (0..cluster.osds().len())
        .map(|n| {
            snap.counter(&format!("osd{n}.qos.served_reservation"))
                .unwrap_or(0)
        })
        .sum();
    cluster.shutdown();
    (protected, noisy, reserved)
}

/// Run all three phases and return the figure rows
/// (`x` = noisy-neighbor count).
pub fn run_fairness() -> Vec<FigRow> {
    // Phase 1: solo reference, QoS on.
    let solo = {
        let cluster = qos_cluster(true);
        let client = cluster.open_volume(PROTECTED_SPEC).expect("open volume");
        let img = afc_core::RbdImage::new(client, "prot", IMAGE_SIZE).expect("solo image");
        let r = afc_workload::run(&protected_job(), &img);
        cluster.shutdown();
        r
    };
    // Phase 2: contended, QoS on.
    let (prot_qos, noisy_qos, reserved) = contended_phase(true);
    // Phase 3: contended, QoS off — the gap the scheduler closes.
    let (prot_noqos, noisy_noqos, _) = contended_phase(false);

    println!(
        "qos: protected p99 solo {:.2}ms | contended qos-on {:.2}ms (reservation dispatches {reserved}) | qos-off {:.2}ms",
        solo.p99().as_secs_f64() * 1e3,
        prot_qos.p99().as_secs_f64() * 1e3,
        prot_noqos.p99().as_secs_f64() * 1e3,
    );
    let n = NOISY_TENANTS as f64;
    vec![
        FigRow::from_report("protected_solo", 0.0, &solo, false).with_tuning("afceph"),
        FigRow::from_report("protected_qos", n, &prot_qos, false).with_tuning("afceph"),
        FigRow::from_report("noisy_qos", n, &noisy_qos, false).with_tuning("afceph"),
        FigRow::from_report("protected_noqos", n, &prot_noqos, false).with_tuning("afceph+qos_off"),
        FigRow::from_report("noisy_noqos", n, &noisy_noqos, false).with_tuning("afceph+qos_off"),
    ]
}

/// A row read back from `bench_results/qos.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct QosRow {
    /// Series name (`protected_solo`, `protected_qos`, ...).
    pub series: String,
    /// IOPS.
    pub value: f64,
    /// p99 latency, milliseconds.
    pub p99_ms: f64,
}

/// Parse the JSON written by [`crate::save_rows`] for the qos figure.
/// Line-oriented like `baseline::parse`: one field per line, `"series"`
/// opens a new row.
pub fn parse_rows(s: &str) -> Vec<QosRow> {
    let mut rows = Vec::new();
    let mut cur: Option<QosRow> = None;
    for line in s.lines() {
        let line = line.trim();
        if line.starts_with("\"series\"") {
            if let Some(r) = cur.take() {
                rows.push(r);
            }
            if let Some(series) = field_str(line, "series") {
                cur = Some(QosRow {
                    series,
                    value: 0.0,
                    p99_ms: 0.0,
                });
            }
        } else if let Some(r) = &mut cur {
            if line.starts_with("\"value\"") {
                r.value = field_num(line, "value").unwrap_or(0.0);
            } else if line.starts_with("\"p99_ms\"") {
                r.p99_ms = field_num(line, "p99_ms").unwrap_or(0.0);
            }
        }
    }
    rows.extend(cur);
    rows
}

/// Apply the fairness gate to a parsed row set; returns one message per
/// violation (empty = pass).
///
/// - `protected_qos` p99 must not exceed `p99_factor() ×` the
///   `protected_solo` p99 plus the [`p99_slack_ms`] absolute allowance
///   (the isolation claim, host noise floored out).
/// - `protected_qos` p99 must strictly beat `protected_noqos` p99: the
///   scheduler must be doing better than no scheduler at all.
/// - Both `protected_qos` and `noisy_qos` must have made progress
///   (nonzero IOPS): isolation by starving someone is not a pass.
pub fn gate_rows(rows: &[QosRow]) -> Vec<String> {
    let mut out = Vec::new();
    let find = |name: &str| rows.iter().find(|r| r.series == name);
    let (Some(solo), Some(prot)) = (find("protected_solo"), find("protected_qos")) else {
        out.push("qos.json missing protected_solo/protected_qos rows".into());
        return out;
    };
    let factor = p99_factor();
    let slack = p99_slack_ms();
    let ceiling = solo.p99_ms * factor + slack;
    if prot.p99_ms > ceiling {
        out.push(format!(
            "protected p99 under contention regressed: {:.2}ms > {:.2}ms (solo {:.2}ms × {factor} + {slack}ms)",
            prot.p99_ms, ceiling, solo.p99_ms
        ));
    }
    if let Some(noqos) = find("protected_noqos") {
        if prot.p99_ms >= noqos.p99_ms {
            out.push(format!(
                "QoS-on p99 ({:.2}ms) does not beat QoS-off ({:.2}ms) — the scheduler isn't isolating",
                prot.p99_ms, noqos.p99_ms
            ));
        }
    }
    if prot.value <= 0.0 {
        out.push("protected tenant did no work under contention".into());
    }
    match find("noisy_qos") {
        Some(noisy) if noisy.value <= 0.0 => {
            out.push("noisy tenants starved under QoS (best-effort must progress)".into());
        }
        None => out.push("qos.json missing noisy_qos row".into()),
        _ => {}
    }
    out
}

/// Extract the string value of `"key": "..."` from `line`.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract the numeric value of `"key": <num>` from `line`.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(series: &str, value: f64, p99_ms: f64) -> QosRow {
        QosRow {
            series: series.into(),
            value,
            p99_ms,
        }
    }

    fn passing() -> Vec<QosRow> {
        vec![
            row("protected_solo", 2000.0, 1.0),
            row("protected_qos", 1600.0, 1.5),
            row("noisy_qos", 3000.0, 9.0),
            row("protected_noqos", 500.0, 12.0),
            row("noisy_noqos", 4000.0, 8.0),
        ]
    }

    #[test]
    fn gate_passes_within_factor() {
        assert!(gate_rows(&passing()).is_empty());
    }

    #[test]
    fn gate_fails_on_p99_blowout() {
        let mut rows = passing();
        rows[1].p99_ms = 10.0; // ceiling is solo 1.0 × 2 + 3ms slack = 5ms
        let msgs = gate_rows(&rows);
        assert!(msgs.iter().any(|m| m.contains("protected p99")), "{msgs:?}");
    }

    #[test]
    fn gate_fails_when_qos_does_not_beat_qos_off() {
        let mut rows = passing();
        rows[3].p99_ms = 1.2; // qos-off better than qos-on (1.5)
        let msgs = gate_rows(&rows);
        assert!(msgs.iter().any(|m| m.contains("does not beat")), "{msgs:?}");
    }

    #[test]
    fn gate_fails_on_starved_noisy() {
        let mut rows = passing();
        rows[2].value = 0.0;
        let msgs = gate_rows(&rows);
        assert!(msgs.iter().any(|m| m.contains("starved")), "{msgs:?}");
    }

    #[test]
    fn gate_fails_on_missing_rows() {
        assert!(!gate_rows(&[]).is_empty());
    }

    #[test]
    fn parse_roundtrips_saved_rows() {
        let fig: Vec<FigRow> = passing()
            .iter()
            .map(|r| FigRow {
                series: r.series.clone(),
                x: 4.0,
                value: r.value,
                lat_ms: 0.5,
                p99_ms: r.p99_ms,
                unit: "IOPS".into(),
                tuning: "afceph".into(),
            })
            .collect();
        // save_rows writes via rows_to_json; parse its exact output.
        let json = crate::rows_to_json(&fig);
        let parsed = parse_rows(&json);
        assert_eq!(parsed, passing());
    }

    #[test]
    fn env_defaults_sane() {
        assert!(qos_secs() > 0.0);
        assert!(p99_factor() > 1.0);
        assert!(p99_slack_ms() >= 0.0);
    }
}
