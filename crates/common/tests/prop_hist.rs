//! Property tests for the latency histogram and hashing utilities.

use afc_common::rng::{hash_bytes, mix64};
use afc_common::LatencyHist;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Quantiles are bounded by min/max, monotone in q, and within the
    /// bucket scheme's relative error of exact for single values.
    #[test]
    fn hist_quantile_properties(mut samples in proptest::collection::vec(1u64..10_000_000, 1..300)) {
        let mut h = LatencyHist::new();
        for &s in &samples {
            h.record_us(s);
        }
        samples.sort_unstable();
        let (lo, hi) = (samples[0], *samples.last().unwrap());
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mut prev = std::time::Duration::ZERO;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            prop_assert!(q >= prev);
            prev = q;
            let us = q.as_micros() as u64;
            // Within bucket error (~3.2%) of the true range.
            prop_assert!(us as f64 >= lo as f64 * 0.96 - 1.0, "q below min: {us} < {lo}");
            prop_assert!(us as f64 <= hi as f64 * 1.04 + 1.0, "q above max: {us} > {hi}");
        }
        // Mean is exact (tracked outside buckets).
        let exact: u128 = samples.iter().map(|&s| s as u128).sum::<u128>() / samples.len() as u128;
        prop_assert_eq!(h.mean().as_micros(), exact);
    }

    /// Merging histograms equals recording the union.
    #[test]
    fn hist_merge_associative(a in proptest::collection::vec(1u64..1_000_000, 0..100),
                              b in proptest::collection::vec(1u64..1_000_000, 0..100)) {
        let mut ha = LatencyHist::new();
        let mut hb = LatencyHist::new();
        let mut hu = LatencyHist::new();
        for &s in &a { ha.record_us(s); hu.record_us(s); }
        for &s in &b { hb.record_us(s); hu.record_us(s); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        for i in 0..=10 {
            prop_assert_eq!(ha.quantile(i as f64 / 10.0), hu.quantile(i as f64 / 10.0));
        }
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
    }

    /// hash_bytes is a function (equal inputs → equal outputs) and
    /// prefix-sensitive.
    #[test]
    fn hash_function_properties(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hash_bytes(&data), hash_bytes(&data));
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(hash_bytes(&data), hash_bytes(&extended));
    }

    /// mix64 is injective on arbitrary pairs (collision would break straw2
    /// determinism assumptions).
    #[test]
    fn mix64_injective(a in any::<u64>(), b in any::<u64>()) {
        if a != b {
            prop_assert_ne!(mix64(a), mix64(b));
        }
    }
}
