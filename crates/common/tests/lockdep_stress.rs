//! Multi-thread lockdep stress tests.
//!
//! The unit tests in `lockdep.rs` cover each check in isolation; these
//! exercise the detector under real cross-thread interleavings:
//!
//! - a *deterministic* inversion (barrier-sequenced, not racy) must be
//!   caught on its first occurrence — lockdep's whole value is flagging
//!   orderings that have never yet deadlocked;
//! - heavy contention on correctly-ordered acquisitions must produce
//!   zero false positives;
//! - an inversion arriving mid-storm, while other threads hold and
//!   release the same classes, must still be caught.
//!
//! All inversion tests use dedicated [`UNRANKED`] classes: the order
//! graph is process-global and the poisoned edges persist after the
//! expected panic, so classes are never shared across tests.

use afc_common::lockdep::{LockClass, TrackedMutex, UNRANKED};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Barrier};
use std::thread;

/// Runs `f` expecting a lockdep panic; returns the panic message.
fn expect_lockdep_panic(f: impl FnOnce() + Send + 'static) -> String {
    let err = thread::spawn(move || catch_unwind(AssertUnwindSafe(f)))
        .join()
        .expect("harness thread must not die outside catch_unwind")
        .expect_err("lockdep should have panicked");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "<non-string panic>".to_string())
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "lockdep compiled out in release")]
fn deterministic_cross_thread_inversion_is_caught() {
    static A: LockClass = LockClass {
        name: "stress.det_a",
        rank: UNRANKED,
        no_block_while_held: false,
    };
    static B: LockClass = LockClass {
        name: "stress.det_b",
        rank: UNRANKED,
        no_block_while_held: false,
    };
    let a = Arc::new(TrackedMutex::new(&A, 0u32));
    let b = Arc::new(TrackedMutex::new(&B, 0u32));

    // Thread 1 establishes the A→B edge, then releases both and signals.
    // Only after the signal does thread 2 attempt B→A, so there is no
    // actual deadlock and no timing dependence — the inversion exists
    // purely in the order graph, which is exactly what lockdep must see.
    let (tx, rx) = mpsc::channel();
    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
    let establisher = thread::spawn(move || {
        let ga = a1.lock();
        let gb = b1.lock();
        drop(gb);
        drop(ga);
        tx.send(()).unwrap();
    });
    rx.recv().unwrap();
    establisher.join().unwrap();

    let msg = expect_lockdep_panic(move || {
        let _gb = b.lock();
        let _ga = a.lock(); // B→A closes the cycle
    });
    assert!(
        msg.contains("lock-order cycle"),
        "unexpected panic message: {msg}"
    );
    assert!(
        msg.contains("stress.det_a") && msg.contains("stress.det_b"),
        "panic should name both classes: {msg}"
    );
}

#[test]
fn contended_in_order_acquisitions_produce_no_false_positives() {
    static L1: LockClass = LockClass {
        name: "stress.ok_1",
        rank: 9_100,
        no_block_while_held: false,
    };
    static L2: LockClass = LockClass {
        name: "stress.ok_2",
        rank: 9_200,
        no_block_while_held: false,
    };
    static L3: LockClass = LockClass {
        name: "stress.ok_3",
        rank: 9_300,
        no_block_while_held: false,
    };
    let m1 = Arc::new(TrackedMutex::new(&L1, 0u64));
    let m2 = Arc::new(TrackedMutex::new(&L2, 0u64));
    let m3 = Arc::new(TrackedMutex::new(&L3, 0u64));

    const THREADS: usize = 8;
    const ITERS: usize = 400;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let (m1, m2, m3) = (Arc::clone(&m1), Arc::clone(&m2), Arc::clone(&m3));
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for i in 0..ITERS {
                    // Mix full chains, partial chains and try_locks — all
                    // respecting rank order, so lockdep must stay silent.
                    match (t + i) % 3 {
                        0 => {
                            let mut g1 = m1.lock();
                            let mut g2 = m2.lock();
                            let mut g3 = m3.lock();
                            *g1 += 1;
                            *g2 += 1;
                            *g3 += 1;
                        }
                        1 => {
                            let mut g2 = m2.lock();
                            *g2 += 1;
                            if let Some(mut g3) = m3.try_lock() {
                                *g3 += 1;
                            }
                        }
                        _ => {
                            let mut g3 = m3.lock();
                            *g3 += 1;
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("in-order stress thread must not panic");
    }
    // Sanity: the counters prove every thread really ran its loop.
    assert!(*m3.lock() >= (THREADS * ITERS) as u64 / 3);
}

#[test]
#[cfg_attr(not(debug_assertions), ignore = "lockdep compiled out in release")]
fn inversion_is_caught_amid_concurrent_lock_traffic() {
    static X: LockClass = LockClass {
        name: "stress.storm_x",
        rank: UNRANKED,
        no_block_while_held: false,
    };
    static Y: LockClass = LockClass {
        name: "stress.storm_y",
        rank: UNRANKED,
        no_block_while_held: false,
    };
    let x = Arc::new(TrackedMutex::new(&X, 0u64));
    let y = Arc::new(TrackedMutex::new(&Y, 0u64));

    // Four threads hammer the legitimate X→Y order; once the first
    // full chain has completed (edge recorded), the offender tries Y→X.
    let (first_chain_tx, first_chain_rx) = mpsc::channel();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            let tx = first_chain_tx.clone();
            thread::spawn(move || {
                for _ in 0..300 {
                    let mut gx = x.lock();
                    let mut gy = y.lock();
                    *gx += 1;
                    *gy += 1;
                    drop(gy);
                    drop(gx);
                    let _ = tx.send(());
                }
            })
        })
        .collect();
    first_chain_rx.recv().unwrap();

    let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
    let msg = expect_lockdep_panic(move || {
        // try_lock until Y is obtained so the offender cannot deadlock
        // against the storm; the X acquisition then trips the detector.
        loop {
            if let Some(_gy) = y2.try_lock() {
                let _gx = x2.lock();
                return;
            }
        }
    });
    assert!(
        msg.contains("lock-order cycle"),
        "unexpected panic message: {msg}"
    );

    for w in workers {
        w.join().expect("storm worker must not panic");
    }
}
