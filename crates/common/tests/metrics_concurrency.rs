//! Concurrent-update correctness for the metric registry: hot-path
//! updates are relaxed atomics, so totals must still be exact once the
//! writers join, across many threads hammering many metrics at once.

use afc_common::metrics::Metrics;
use std::sync::Arc;

const THREADS: usize = 8;
const METRICS: usize = 16;
const OPS_PER_THREAD: u64 = 5_000;

#[test]
fn concurrent_counter_totals_are_exact() {
    let m = Arc::new(Metrics::new());
    // Every thread gets its own handle to every metric, exercising the
    // shared-cell path (same MetricId → same underlying cell).
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let m = Arc::clone(&m);
            s.spawn(move || {
                let counters: Vec<_> = (0..METRICS)
                    .map(|i| m.counter(format!("osd{i}.op.writes")))
                    .collect();
                for op in 0..OPS_PER_THREAD {
                    counters[(t + op as usize) % METRICS].inc();
                }
            });
        }
    });
    let snap = m.snapshot();
    let total: u64 = (0..METRICS)
        .map(|i| snap.counter(&format!("osd{i}.op.writes")).unwrap())
        .sum();
    assert_eq!(total, THREADS as u64 * OPS_PER_THREAD);
}

#[test]
fn concurrent_histogram_counts_are_exact() {
    let m = Arc::new(Metrics::new());
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let m = Arc::clone(&m);
            s.spawn(move || {
                let hists: Vec<_> = (0..METRICS)
                    .map(|i| m.histogram(format!("osd{i}.stage.journal")))
                    .collect();
                for op in 0..OPS_PER_THREAD {
                    hists[(t * 3 + op as usize) % METRICS].observe_us(op % 10_000);
                }
            });
        }
    });
    let snap = m.snapshot();
    let mut total = 0;
    for i in 0..METRICS {
        let h = snap
            .histogram(&format!("osd{i}.stage.journal"))
            .expect("histogram registered");
        // Bucket cumulative counts are internally consistent.
        assert_eq!(h.buckets.last().map(|&(_, c)| c).unwrap_or(0), h.count);
        total += h.count;
    }
    assert_eq!(total, THREADS as u64 * OPS_PER_THREAD);
}

#[test]
fn concurrent_gauge_adds_balance_out() {
    let m = Arc::new(Metrics::new());
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let m = Arc::clone(&m);
            s.spawn(move || {
                let g = m.gauge("osd0.fs.queue_depth");
                for _ in 0..OPS_PER_THREAD {
                    g.add(3);
                    g.sub(2);
                }
            });
        }
    });
    assert_eq!(
        m.snapshot().gauge("osd0.fs.queue_depth").unwrap(),
        (THREADS as u64 * OPS_PER_THREAD) as i64
    );
}
