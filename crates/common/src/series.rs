//! Wall-clock time-series recording.
//!
//! Used by figure harnesses that plot behaviour over time — e.g. Figure 4's
//! IOPS fluctuation as the filestore backlog grows. [`IopsSampler`] counts
//! completions from many threads and snapshots windowed rates; [`TimeSeries`]
//! is the plain `(t, value)` container the harnesses print/serialize.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A `(seconds-since-start, value)` series.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point.
    pub fn push(&mut self, t_secs: f64, value: f64) {
        self.points.push((t_secs, value));
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }

    /// Population standard deviation of the values.
    pub fn stddev(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .points
            .iter()
            .map(|p| (p.1 - m) * (p.1 - m))
            .sum::<f64>()
            / self.points.len() as f64;
        var.sqrt()
    }

    /// Coefficient of variation (stddev / mean) — the "fluctuation" metric
    /// used when reproducing Figure 4 and the 32K-write journal-full effect.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Minimum value (`f64::NAN` when empty).
    pub fn min_value(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(f64::NAN, f64::min)
    }

    /// Maximum value (`f64::NAN` when empty).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(f64::NAN, f64::max)
    }
}

/// Concurrent completion counter with windowed-rate sampling.
///
/// Worker threads call [`IopsSampler::tick`] per completed op; a sampling
/// thread (or the main harness loop) calls [`IopsSampler::sample`]
/// periodically to append the rate over the elapsed window to a series.
pub struct IopsSampler {
    count: AtomicU64,
    start: Instant,
    state: Mutex<SamplerState>,
}

struct SamplerState {
    last_count: u64,
    last_at: Instant,
    series: TimeSeries,
}

impl Default for IopsSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl IopsSampler {
    /// Create a sampler; the clock starts now.
    pub fn new() -> Self {
        let now = Instant::now();
        IopsSampler {
            count: AtomicU64::new(0),
            start: now,
            state: Mutex::new(SamplerState {
                last_count: 0,
                last_at: now,
                series: TimeSeries::new(),
            }),
        }
    }

    /// Record `n` completed operations. Callable from any thread.
    #[inline]
    pub fn tick(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Total operations recorded so far.
    pub fn total(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Close the current window: append `(t, ops/sec over window)` and return it.
    pub fn sample(&self) -> (f64, f64) {
        let now = Instant::now();
        let count = self.count.load(Ordering::Relaxed);
        let mut st = self.state.lock();
        let dt = now.duration_since(st.last_at).as_secs_f64();
        let rate = if dt > 0.0 {
            (count - st.last_count) as f64 / dt
        } else {
            0.0
        };
        let t = now.duration_since(self.start).as_secs_f64();
        st.series.push(t, rate);
        st.last_count = count;
        st.last_at = now;
        (t, rate)
    }

    /// Average rate since construction.
    pub fn overall_rate(&self) -> f64 {
        let dt = self.start.elapsed().as_secs_f64();
        if dt > 0.0 {
            self.total() as f64 / dt
        } else {
            0.0
        }
    }

    /// Snapshot the accumulated series.
    pub fn series(&self) -> TimeSeries {
        self.state.lock().series.clone()
    }

    /// Time elapsed since construction.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn series_statistics() {
        let mut s = TimeSeries::new();
        for (t, v) in [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0)] {
            s.push(t, v);
        }
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 20.0).abs() < 1e-9);
        let expect_sd = (200.0f64 / 3.0).sqrt();
        assert!((s.stddev() - expect_sd).abs() < 1e-9);
        assert!((s.cv() - expect_sd / 20.0).abs() < 1e-9);
        assert_eq!(s.min_value(), 10.0);
        assert_eq!(s.max_value(), 30.0);
    }

    #[test]
    fn empty_series_safe() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn sampler_counts_from_threads() {
        let s = Arc::new(IopsSampler::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.tick(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.total(), 4000);
    }

    #[test]
    fn sampler_windows_reset() {
        let s = IopsSampler::new();
        s.tick(100);
        std::thread::sleep(Duration::from_millis(20));
        let (_, r1) = s.sample();
        assert!(r1 > 0.0);
        // No ticks since last sample: rate must be ~0.
        std::thread::sleep(Duration::from_millis(10));
        let (_, r2) = s.sample();
        assert_eq!(r2, 0.0);
        assert_eq!(s.series().len(), 2);
    }

    #[test]
    fn overall_rate_positive_after_ticks() {
        let s = IopsSampler::new();
        s.tick(50);
        std::thread::sleep(Duration::from_millis(5));
        assert!(s.overall_rate() > 0.0);
        assert!(s.elapsed() >= Duration::from_millis(5));
    }
}
