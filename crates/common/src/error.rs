//! Workspace-wide error type.
//!
//! Every fallible public API in the workspace returns [`Result`]. The variants
//! map onto the failure classes a scale-out store actually surfaces: I/O
//! errors from devices, capacity exhaustion, missing objects, shutdown races
//! and configuration mistakes.

use std::fmt;

/// Errors produced anywhere in the `afcstore` workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AfcError {
    /// A device-level I/O failure (injected fault or model limit).
    Io(String),
    /// The addressed entity (object, image, key, PG) does not exist.
    NotFound(String),
    /// The addressed entity already exists and may not be recreated.
    AlreadyExists(String),
    /// An operation exceeded a capacity limit (journal, device, cache).
    Full(String),
    /// The component has been shut down and no longer accepts work.
    ShutDown(String),
    /// A request was malformed (bad offset, zero length, misalignment...).
    InvalidArgument(String),
    /// Internal consistency violation; indicates a bug, surfaced loudly.
    Corruption(String),
    /// A request timed out waiting for a resource or a peer.
    Timeout(String),
    /// The peer/connection went away mid-operation.
    Disconnected(String),
    /// A write tore mid-transfer: an unspecified prefix reached media, the
    /// tail did not. Surfaced by device models under fault injection; the
    /// journal converts it into a checksum-invalid tail entry.
    TornWrite(String),
    /// The op reached an OSD that is not the PG's primary (the client's
    /// map is stale). The client must refresh its map snapshot and
    /// re-target the current primary.
    NotPrimary(String),
    /// The op carried (or met) a map epoch the OSD cannot serve yet —
    /// e.g. the PG is still peering after a map change. The client must
    /// refresh its map and resubmit.
    WrongEpoch(String),
}

impl AfcError {
    /// Short machine-friendly category name (used in stats and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            AfcError::Io(_) => "io",
            AfcError::NotFound(_) => "not_found",
            AfcError::AlreadyExists(_) => "already_exists",
            AfcError::Full(_) => "full",
            AfcError::ShutDown(_) => "shut_down",
            AfcError::InvalidArgument(_) => "invalid_argument",
            AfcError::Corruption(_) => "corruption",
            AfcError::Timeout(_) => "timeout",
            AfcError::Disconnected(_) => "disconnected",
            AfcError::TornWrite(_) => "torn_write",
            AfcError::NotPrimary(_) => "not_primary",
            AfcError::WrongEpoch(_) => "wrong_epoch",
        }
    }

    /// Whether a client may transparently retry the operation. Transient
    /// transport/device failures are retryable; semantic errors (missing
    /// object, bad argument, corruption) are terminal and must surface.
    /// `NotPrimary`/`WrongEpoch` are deliberately *not* here: they are
    /// retryable only after a map refresh, which the rados client handles
    /// as its own explicit path.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            AfcError::Io(_) | AfcError::Timeout(_) | AfcError::Disconnected(_)
        )
    }

    /// Whether the error signals a stale client map (`NotPrimary` /
    /// `WrongEpoch`): the op must be resubmitted against a refreshed
    /// `OsdMap` snapshot, re-targeting whatever primary it names now.
    pub fn needs_map_refresh(&self) -> bool {
        matches!(self, AfcError::NotPrimary(_) | AfcError::WrongEpoch(_))
    }
}

impl fmt::Display for AfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AfcError::Io(m) => write!(f, "I/O error: {m}"),
            AfcError::NotFound(m) => write!(f, "not found: {m}"),
            AfcError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            AfcError::Full(m) => write!(f, "full: {m}"),
            AfcError::ShutDown(m) => write!(f, "shut down: {m}"),
            AfcError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            AfcError::Corruption(m) => write!(f, "corruption: {m}"),
            AfcError::Timeout(m) => write!(f, "timeout: {m}"),
            AfcError::Disconnected(m) => write!(f, "disconnected: {m}"),
            AfcError::TornWrite(m) => write!(f, "torn write: {m}"),
            AfcError::NotPrimary(m) => write!(f, "not primary: {m}"),
            AfcError::WrongEpoch(m) => write!(f, "wrong epoch: {m}"),
        }
    }
}

impl std::error::Error for AfcError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, AfcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = AfcError::NotFound("object rbd.0.4".into());
        assert_eq!(e.to_string(), "not found: object rbd.0.4");
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            AfcError::Io(String::new()),
            AfcError::NotFound(String::new()),
            AfcError::AlreadyExists(String::new()),
            AfcError::Full(String::new()),
            AfcError::ShutDown(String::new()),
            AfcError::InvalidArgument(String::new()),
            AfcError::Corruption(String::new()),
            AfcError::Timeout(String::new()),
            AfcError::Disconnected(String::new()),
            AfcError::TornWrite(String::new()),
            AfcError::NotPrimary(String::new()),
            AfcError::WrongEpoch(String::new()),
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }

    #[test]
    fn retryability_split() {
        assert!(AfcError::Io(String::new()).is_retryable());
        assert!(AfcError::Timeout(String::new()).is_retryable());
        assert!(AfcError::Disconnected(String::new()).is_retryable());
        assert!(!AfcError::NotFound(String::new()).is_retryable());
        assert!(!AfcError::Corruption(String::new()).is_retryable());
        assert!(!AfcError::TornWrite(String::new()).is_retryable());
        assert!(!AfcError::ShutDown(String::new()).is_retryable());
        // Stale-map errors retry only via the explicit map-refresh path.
        assert!(!AfcError::NotPrimary(String::new()).is_retryable());
        assert!(!AfcError::WrongEpoch(String::new()).is_retryable());
        assert!(AfcError::NotPrimary(String::new()).needs_map_refresh());
        assert!(AfcError::WrongEpoch(String::new()).needs_map_refresh());
        assert!(!AfcError::Timeout(String::new()).needs_map_refresh());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&AfcError::Io("x".into()));
    }
}
