//! Deterministic, seed-reproducible fault injection.
//!
//! A fault schedule is plain data: a [`FaultPlan`] is a seed plus a list of
//! [`FaultSpec`]s, each naming an injection *site* (a dotted string like
//! `"osd3.journal.write"`), a [`FaultKind`], and a counter window (`after`
//! matching hits pass through, then the next `count` fire). Components that
//! can fail hold an `Arc<FaultRegistry>` and ask [`FaultRegistry::check`] at
//! their injection sites; the registry replays the schedule deterministically,
//! so any failure observed in a test is reproducible from the plan alone.
//!
//! The hot path is free when no faults are loaded: `check` is a single
//! relaxed atomic load before touching any lock, and the registry disarms
//! itself once every spec is exhausted.
//!
//! ```
//! use afc_common::faults::{FaultKind, FaultPlan, FaultRegistry, FaultSpec};
//!
//! let plan = FaultPlan::new(42)
//!     .with(FaultSpec::new("osd0.journal.write", FaultKind::Error).after(1));
//! let reg = FaultRegistry::from_plan(&plan);
//! assert_eq!(reg.check("osd0.journal.write"), None); // first hit passes
//! assert_eq!(reg.check("osd0.journal.write"), Some(FaultKind::Error));
//! assert_eq!(reg.hits("osd0.journal.write"), 1);
//! ```

use crate::lockdep::{classes, TrackedMutex};
use crate::rng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What happens when a fault fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the operation with a (retryable) I/O error.
    Error,
    /// Add a latency spike of the given duration.
    Delay(Duration),
    /// Tear the write: a prefix reaches media, the tail is garbage.
    /// Only meaningful at device/journal write sites.
    Torn,
    /// Silently drop the message. Only meaningful at messenger sites.
    Drop,
    /// Deliver the message twice. Only meaningful at messenger sites.
    Duplicate,
}

/// One scheduled fault: plain data, freely cloned and printed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Injection site this spec arms, e.g. `"osd0.journal.write"`.
    pub site: String,
    /// Effect when it fires.
    pub kind: FaultKind,
    /// Matching hits to let through unharmed before the first firing.
    pub after: u64,
    /// Firings before the spec is exhausted (`u64::MAX` = permanent).
    pub count: u64,
}

impl FaultSpec {
    /// A spec firing on the first matching hit, exactly once.
    ///
    /// ```
    /// use afc_common::faults::{FaultKind, FaultSpec};
    /// let spec = FaultSpec::new("osd0.data.write", FaultKind::Torn);
    /// assert_eq!(spec.after, 0);
    /// assert_eq!(spec.count, 1);
    /// ```
    pub fn new(site: impl Into<String>, kind: FaultKind) -> Self {
        FaultSpec {
            site: site.into(),
            kind,
            after: 0,
            count: 1,
        }
    }

    /// Let the first `n` matching hits through before firing.
    ///
    /// ```
    /// use afc_common::faults::{FaultKind, FaultSpec};
    /// // Fail the third write, then recover.
    /// let spec = FaultSpec::new("osd0.data.write", FaultKind::Error).after(2);
    /// assert_eq!(spec.after, 2);
    /// ```
    #[must_use]
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Fire `n` times before exhausting.
    ///
    /// ```
    /// use afc_common::faults::{FaultKind, FaultSpec};
    /// let spec = FaultSpec::new("net.request", FaultKind::Drop).times(3);
    /// assert_eq!(spec.count, 3);
    /// ```
    #[must_use]
    pub fn times(mut self, n: u64) -> Self {
        self.count = n;
        self
    }

    /// Fire on every matching hit, forever (a permanent fault).
    ///
    /// ```
    /// use afc_common::faults::{FaultKind, FaultSpec};
    /// let spec = FaultSpec::new("osd1.fs.apply", FaultKind::Error).forever();
    /// assert_eq!(spec.count, u64::MAX);
    /// ```
    #[must_use]
    pub fn forever(mut self) -> Self {
        self.count = u64::MAX;
        self
    }
}

/// A complete, replayable fault schedule: seed + specs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for any randomized decisions a harness derives from this plan.
    pub seed: u64,
    /// The scheduled faults.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    ///
    /// ```
    /// use afc_common::faults::FaultPlan;
    /// let plan = FaultPlan::new(7);
    /// assert_eq!(plan.seed, 7);
    /// assert!(plan.specs.is_empty());
    /// ```
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Append a spec (builder style).
    ///
    /// ```
    /// use afc_common::faults::{FaultKind, FaultPlan, FaultSpec};
    /// let plan = FaultPlan::new(7)
    ///     .with(FaultSpec::new("a", FaultKind::Error))
    ///     .with(FaultSpec::new("b", FaultKind::Drop));
    /// assert_eq!(plan.specs.len(), 2);
    /// ```
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }
}

/// A loaded spec plus its firing counters.
#[derive(Debug)]
struct ArmedSpec {
    spec: FaultSpec,
    /// Matching hits observed so far (fired or not).
    seen: u64,
    /// Times this spec has fired.
    fired: u64,
}

impl ArmedSpec {
    fn exhausted(&self) -> bool {
        self.fired >= self.spec.count
    }
}

#[derive(Debug, Default)]
struct RegState {
    specs: Vec<ArmedSpec>,
    /// Fires per site (the spec's own site string), for test assertions.
    hits: HashMap<String, u64>,
}

/// The runtime registry components consult at their injection sites.
///
/// With no specs loaded, [`check`](Self::check) is one relaxed atomic load.
pub struct FaultRegistry {
    armed: AtomicBool,
    seed: u64,
    state: TrackedMutex<RegState>,
}

impl Default for FaultRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultRegistry {
    /// An empty, disarmed registry (seed 0).
    pub fn new() -> Self {
        FaultRegistry {
            armed: AtomicBool::new(false),
            seed: 0,
            state: TrackedMutex::new(&classes::FAULTS, RegState::default()),
        }
    }

    /// A registry pre-loaded from a plan.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let reg = FaultRegistry {
            seed: plan.seed,
            ..Self::new()
        };
        for spec in &plan.specs {
            reg.install(spec.clone());
        }
        reg
    }

    /// The plan's seed, for harnesses deriving randomized decisions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Deterministic child RNG for stream `stream` of this plan's seed.
    pub fn rng(&self, stream: u64) -> rand::rngs::StdRng {
        rng::seeded(rng::child_seed(self.seed, stream))
    }

    /// Arm one spec.
    pub fn install(&self, spec: FaultSpec) {
        let mut st = self.state.lock();
        st.specs.push(ArmedSpec {
            spec,
            seen: 0,
            fired: 0,
        });
        // ordering: `armed` is an advisory fast-path filter with Relaxed
        // readers; the specs themselves are only read under `state`, so the
        // mutex provides the real synchronization. Release is belt-and-braces
        // for the flag itself.
        self.armed.store(true, Ordering::Release);
    }

    /// Remove every spec (hit counts are preserved for assertions).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.specs.clear();
        // ordering: see `install` — advisory filter, payload is mutex-guarded.
        self.armed.store(false, Ordering::Release);
    }

    /// Whether any spec may still fire.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Consult the schedule at `site`. Returns the fault to apply, if one
    /// fires. Free (one relaxed load) when nothing is armed.
    #[inline]
    pub fn check(&self, site: &str) -> Option<FaultKind> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        self.check_io(site, "")
    }

    /// Like [`check`](Self::check), but matches specs written either as the
    /// bare `base` site or as `base.op` — devices use this so one spec can
    /// target all I/O at a site (`"osd0.data"`) or one verb
    /// (`"osd0.data.write"`).
    ///
    /// ```
    /// use afc_common::faults::{FaultKind, FaultRegistry, FaultSpec};
    /// let reg = FaultRegistry::new();
    /// reg.install(FaultSpec::new("osd0.data.write", FaultKind::Torn).forever());
    /// assert_eq!(reg.check_io("osd0.data", "write"), Some(FaultKind::Torn));
    /// assert_eq!(reg.check_io("osd0.data", "read"), None);
    /// ```
    #[inline]
    pub fn check_io(&self, base: &str, op: &str) -> Option<FaultKind> {
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        self.check_slow(base, op)
    }

    fn check_slow(&self, base: &str, op: &str) -> Option<FaultKind> {
        let mut st = self.state.lock();
        let mut fired: Option<(String, FaultKind)> = None;
        let mut live = false;
        for armed in &mut st.specs {
            let matches = armed.spec.site == base
                || (!op.is_empty()
                    && armed
                        .spec
                        .site
                        .strip_prefix(base)
                        .and_then(|r| r.strip_prefix('.'))
                        .is_some_and(|r| r == op));
            if matches && !armed.exhausted() {
                armed.seen += 1;
                if fired.is_none() && armed.seen > armed.spec.after && !armed.exhausted() {
                    armed.fired += 1;
                    fired = Some((armed.spec.site.clone(), armed.spec.kind.clone()));
                }
            }
            live |= !armed.exhausted();
        }
        if let Some((site, _)) = &fired {
            *st.hits.entry(site.clone()).or_insert(0) += 1;
        }
        if !live {
            // Everything exhausted: restore the zero-cost happy path.
            // ordering: see `install` — advisory filter, payload is mutex-guarded.
            self.armed.store(false, Ordering::Release);
        }
        fired.map(|(_, kind)| kind)
    }

    /// Times any spec declared at exactly `site` has fired.
    pub fn hits(&self, site: &str) -> u64 {
        self.state.lock().hits.get(site).copied().unwrap_or(0)
    }

    /// Total fires across all sites.
    pub fn total_hits(&self) -> u64 {
        self.state.lock().hits.values().sum()
    }
}

impl std::fmt::Debug for FaultRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultRegistry")
            .field("armed", &self.is_armed())
            .field("seed", &self.seed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_never_fires() {
        let reg = FaultRegistry::new();
        assert!(!reg.is_armed());
        assert_eq!(reg.check("anything"), None);
        assert_eq!(reg.total_hits(), 0);
    }

    #[test]
    fn after_and_count_window() {
        let reg = FaultRegistry::new();
        reg.install(FaultSpec::new("s", FaultKind::Error).after(2).times(2));
        assert_eq!(reg.check("s"), None);
        assert_eq!(reg.check("s"), None);
        assert_eq!(reg.check("s"), Some(FaultKind::Error));
        assert_eq!(reg.check("s"), Some(FaultKind::Error));
        assert_eq!(reg.check("s"), None, "exhausted");
        assert!(!reg.is_armed(), "registry disarms once exhausted");
        assert_eq!(reg.hits("s"), 2);
    }

    #[test]
    fn sites_are_independent() {
        let reg = FaultRegistry::new();
        reg.install(FaultSpec::new("a", FaultKind::Error).forever());
        assert_eq!(reg.check("b"), None);
        assert_eq!(reg.check("a"), Some(FaultKind::Error));
        assert_eq!(reg.hits("a"), 1);
        assert_eq!(reg.hits("b"), 0);
        assert!(reg.is_armed(), "forever specs never exhaust");
    }

    #[test]
    fn io_suffix_matching() {
        let reg = FaultRegistry::new();
        reg.install(FaultSpec::new("dev.write", FaultKind::Torn).forever());
        reg.install(FaultSpec::new("dev", FaultKind::Delay(Duration::from_millis(1))).forever());
        // Bare-base spec matches any verb; suffixed spec only its own.
        assert_eq!(reg.check_io("dev", "write"), Some(FaultKind::Torn));
        assert_eq!(
            reg.check_io("dev", "read"),
            Some(FaultKind::Delay(Duration::from_millis(1)))
        );
        // Exact-site check does not see the suffixed spec.
        assert_eq!(reg.check("dev.read"), None);
    }

    #[test]
    fn plan_replays_identically() {
        let plan = FaultPlan::new(7)
            .with(FaultSpec::new("x", FaultKind::Error).after(1).times(3))
            .with(FaultSpec::new("y", FaultKind::Drop));
        let run = |plan: &FaultPlan| {
            let reg = FaultRegistry::from_plan(plan);
            let mut out = Vec::new();
            for _ in 0..6 {
                out.push(reg.check("x"));
                out.push(reg.check("y"));
            }
            out
        };
        assert_eq!(run(&plan), run(&plan));
        assert_eq!(plan.seed, 7);
    }

    #[test]
    fn clear_disarms() {
        let reg = FaultRegistry::new();
        reg.install(FaultSpec::new("s", FaultKind::Error).forever());
        assert_eq!(reg.check("s"), Some(FaultKind::Error));
        reg.clear();
        assert!(!reg.is_armed());
        assert_eq!(reg.check("s"), None);
        assert_eq!(reg.hits("s"), 1, "hit history survives clear");
    }

    #[test]
    fn registry_rng_is_deterministic() {
        use rand::Rng;
        let a = FaultRegistry::from_plan(&FaultPlan::new(42));
        let b = FaultRegistry::from_plan(&FaultPlan::new(42));
        assert_eq!(a.rng(3).random::<u64>(), b.rng(3).random::<u64>());
    }
}
