//! Byte-size constants and formatting.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;
/// One tebibyte.
pub const TIB: u64 = 1024 * GIB;

/// Format a byte count compactly: `512B`, `4.0KiB`, `2.5GiB`.
pub fn fmt_bytes(n: u64) -> String {
    const UNITS: [(&str, u64); 4] = [("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)];
    for (name, size) in UNITS {
        if n >= size {
            return format!("{:.1}{name}", n as f64 / size as f64);
        }
    }
    format!("{n}B")
}

/// Parse a block-size string (`"4k"`, `"32K"`, `"4m"`, `"512"`) into bytes.
pub fn parse_bs(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (num, mult) = match s.as_bytes()[s.len() - 1].to_ascii_lowercase() {
        b'k' => (&s[..s.len() - 1], KIB),
        b'm' => (&s[..s.len() - 1], MIB),
        b'g' => (&s[..s.len() - 1], GIB),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(4 * KIB), "4.0KiB");
        assert_eq!(fmt_bytes(5 * MIB / 2), "2.5MiB");
        assert_eq!(fmt_bytes(3 * GIB), "3.0GiB");
        assert_eq!(fmt_bytes(2 * TIB), "2.0TiB");
    }

    #[test]
    fn parse_bs_accepts_suffixes() {
        assert_eq!(parse_bs("4k"), Some(4 * KIB));
        assert_eq!(parse_bs("32K"), Some(32 * KIB));
        assert_eq!(parse_bs("4m"), Some(4 * MIB));
        assert_eq!(parse_bs("1g"), Some(GIB));
        assert_eq!(parse_bs("512"), Some(512));
        assert_eq!(parse_bs(""), None);
        assert_eq!(parse_bs("xk"), None);
    }
}
