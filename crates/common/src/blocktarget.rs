//! The [`BlockTarget`] trait: what a FIO-style workload drives.
//!
//! Implemented by the RBD-like image client in `afc-core`, the SolidFire
//! volume in `afc-solidfire`, and by [`MemBlockTarget`] here for tests of the
//! workload runner itself.

use crate::error::{AfcError, Result};
use parking_lot::RwLock;

/// A synchronous, thread-safe block device endpoint.
///
/// Offsets and lengths are in bytes. Implementations must tolerate arbitrary
/// concurrency — the workload runner issues from `numjobs * iodepth` threads.
pub trait BlockTarget: Send + Sync {
    /// Total size in bytes.
    fn size(&self) -> u64;

    /// Read `len` bytes at `off`.
    fn read_at(&self, off: u64, len: usize) -> Result<Vec<u8>>;

    /// Write `data` at `off`.
    fn write_at(&self, off: u64, data: &[u8]) -> Result<()>;

    /// Flush outstanding writes to stable storage. Default: no-op.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

/// Validate an I/O range against a device size; shared by implementations.
pub fn check_range(size: u64, off: u64, len: u64) -> Result<()> {
    if len == 0 {
        return Err(AfcError::InvalidArgument("zero-length I/O".into()));
    }
    if off.checked_add(len).map(|end| end > size).unwrap_or(true) {
        return Err(AfcError::InvalidArgument(format!(
            "I/O [{off}, +{len}) out of range for size {size}"
        )));
    }
    Ok(())
}

/// A trivial in-memory block target used by workload-runner unit tests.
pub struct MemBlockTarget {
    data: RwLock<Vec<u8>>,
}

impl MemBlockTarget {
    /// Create a zero-filled in-memory device of `size` bytes.
    pub fn new(size: u64) -> Self {
        MemBlockTarget {
            data: RwLock::new(vec![0u8; size as usize]),
        }
    }
}

impl BlockTarget for MemBlockTarget {
    fn size(&self) -> u64 {
        self.data.read().len() as u64
    }

    fn read_at(&self, off: u64, len: usize) -> Result<Vec<u8>> {
        check_range(self.size(), off, len as u64)?;
        let d = self.data.read();
        Ok(d[off as usize..off as usize + len].to_vec())
    }

    fn write_at(&self, off: u64, data: &[u8]) -> Result<()> {
        check_range(self.size(), off, data.len() as u64)?;
        let mut d = self.data.write();
        d[off as usize..off as usize + data.len()].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_target_round_trips() {
        let t = MemBlockTarget::new(4096);
        t.write_at(100, b"hello").unwrap();
        assert_eq!(t.read_at(100, 5).unwrap(), b"hello");
        assert_eq!(t.read_at(0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn range_checks() {
        let t = MemBlockTarget::new(100);
        assert!(matches!(
            t.read_at(90, 20),
            Err(AfcError::InvalidArgument(_))
        ));
        assert!(matches!(
            t.write_at(100, b"x"),
            Err(AfcError::InvalidArgument(_))
        ));
        assert!(matches!(t.read_at(0, 0), Err(AfcError::InvalidArgument(_))));
        assert!(check_range(100, u64::MAX, 1).is_err());
        assert!(check_range(100, 0, 100).is_ok());
    }

    #[test]
    fn flush_default_ok() {
        assert!(MemBlockTarget::new(10).flush().is_ok());
    }
}
