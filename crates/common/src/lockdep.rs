//! Runtime lock-order checking (lockdep) for the OSD hot path.
//!
//! Deadlocks in the write pipeline are order bugs: thread 1 takes the PG
//! lock then the journal ring, thread 2 takes them the other way around,
//! and under load they park forever. This module makes the intended order
//! executable:
//!
//! - Every shared lock belongs to a static [`LockClass`] with a **rank**.
//!   The whole hierarchy is declared once, as data, in [`classes`] /
//!   [`DECLARED_ORDER`].
//! - [`TrackedMutex`] / [`TrackedRwLock`] / [`TrackedCondvar`] wrap the
//!   parking_lot primitives. Under `debug_assertions` every acquisition is
//!   checked against the acquiring thread's held set (rank must strictly
//!   increase) and recorded in a global lock-order graph; the first cycle
//!   panics with the acquisition labels on the offending path.
//! - Classes marked `no_block_while_held` must not be held across a
//!   blocking section (condvar wait on a *different* lock, throttle wait,
//!   journal-full wait). Blocking entry points call [`assert_blockable`].
//!
//! In release builds every check compiles away: the tracked types are
//! transparent newtypes over parking_lot and the class argument is dropped
//! on the floor.
//!
//! Rank semantics: ranks order *classes*, not instances. Acquiring a class
//! while holding a class of equal or higher rank panics; rank
//! [`UNRANKED`] (0) opts a class out of rank checking and relies on the
//! order graph alone. Waiting on a condvar keeps the associated mutex in
//! the held set (the waiter still owns the ordering position), and the
//! mutex a condvar releases during its wait never counts as "held across
//! a blocking section".

use std::fmt;

/// A class of locks sharing one position in the global order.
///
/// Declare one `static` per lock *role* (not per instance): every `Pg`'s
/// state mutex shares [`classes::PG_STATE`].
pub struct LockClass {
    /// Label used in panics and the order graph (`subsystem.lock`).
    pub name: &'static str,
    /// Position in the declared hierarchy; strictly increasing along any
    /// nested acquisition chain. [`UNRANKED`] skips rank checks.
    pub rank: u32,
    /// If true, the lock must never be held when the thread enters a
    /// blocking section ([`assert_blockable`]).
    pub no_block_while_held: bool,
}

/// Rank value that opts a class out of rank checking (graph-only).
pub const UNRANKED: u32 = 0;

pub mod classes {
    //! The declared lock hierarchy — **the** one place ranks live.
    //!
    //! Order (must strictly increase along any nested acquisition):
    //! op queue → QoS scheduler → OSD maps → `Pg::state` → `Pg::pending`
    //! → OSD op tables
    //! (rep_waits / pending_apply / apply gate / trim / channel handles /
    //! ack lanes) → per-op leaf locks → journal → filestore throttle.
    //!
    //! `PG_STATE` deliberately allows blocking while held: the write path
    //! submits to the journal (which can wait for ring space) and readers
    //! wait on the apply gate under the PG lock — that is current,
    //! intended behaviour. The queue/pending locks are pure FIFO guards
    //! and must never be held across a blocking section.

    use super::LockClass;

    /// `OpQueue::q` — the OSD-wide ready queue of PGs with pending work.
    pub static OP_QUEUE: LockClass = LockClass {
        name: "osd.op_queue",
        rank: 100,
        no_block_while_held: true,
    };
    /// `QosScheduler::state` — per-volume QoS queues and token buckets.
    /// Acquired by op workers *while holding* `OP_QUEUE` (so it must rank
    /// just above the queue) and alone by client-op enqueuers. Pure
    /// bookkeeping: never held across journal submits or condvar waits.
    pub static OSD_QOS: LockClass = LockClass {
        name: "osd.qos",
        rank: 102,
        no_block_while_held: true,
    };
    /// `Monitor::fail` — failure-report accounting (reporters, down_since).
    /// Ranks *below* the map: `report_down` publishes a new map while
    /// holding it.
    pub static MON_FAIL: LockClass = LockClass {
        name: "mon.fail",
        rank: 105,
        no_block_while_held: true,
    };
    /// `OsdInner::map` — current OSD map (RwLock).
    pub static OSD_MAP: LockClass = LockClass {
        name: "osd.map",
        rank: 110,
        no_block_while_held: true,
    };
    /// `OsdInner::pgs` — PG id → `Pg` table (RwLock).
    pub static OSD_PG_MAP: LockClass = LockClass {
        name: "osd.pg_map",
        rank: 120,
        no_block_while_held: true,
    };
    /// `Pg::state` — *the* PG lock. Blocking while held is allowed (journal
    /// submit, apply-gate waits happen under it today).
    pub static PG_STATE: LockClass = LockClass {
        name: "pg.state",
        rank: 200,
        no_block_while_held: false,
    };
    /// `Pg::pending` — the pending-queue FIFO next to the PG lock.
    pub static PG_PENDING: LockClass = LockClass {
        name: "pg.pending",
        rank: 300,
        no_block_while_held: true,
    };
    /// `OsdInner::rep_waits` — rep_id → in-flight write table.
    pub static REP_WAITS: LockClass = LockClass {
        name: "osd.rep_waits",
        rank: 400,
        no_block_while_held: true,
    };
    /// `OsdInner::push_waits` — push_id → in-flight recovery-push table.
    /// Acquired under `PG_STATE` by the recovery pump, mirroring
    /// `REP_WAITS` in the write path.
    pub static PUSH_WAITS: LockClass = LockClass {
        name: "osd.push_waits",
        rank: 402,
        no_block_while_held: true,
    };
    /// `OsdInner::rep_seen` — replica-side rep_id dedup window.
    pub static REP_SEEN: LockClass = LockClass {
        name: "osd.rep_seen",
        rank: 405,
        no_block_while_held: true,
    };
    /// `OsdInner::pending_apply` — journal seq → transaction awaiting apply.
    pub static PENDING_APPLY: LockClass = LockClass {
        name: "osd.pending_apply",
        rank: 410,
        no_block_while_held: true,
    };
    /// `ApplyGate::state` — read-vs-apply ordering gate (waits on own cv).
    pub static APPLY_GATE: LockClass = LockClass {
        name: "osd.apply_gate",
        rank: 420,
        no_block_while_held: true,
    };
    /// `OsdInner::trim` — journal trim watermark tracker.
    pub static TRIM: LockClass = LockClass {
        name: "osd.trim",
        rank: 430,
        no_block_while_held: true,
    };
    /// `OsdInner::{completion_tx, reader_tx}` — worker channel handles.
    pub static OSD_CHANNEL_TX: LockClass = LockClass {
        name: "osd.channel_tx",
        rank: 440,
        no_block_while_held: true,
    };
    /// `OrderedAcker::lanes` — ordered-ack lanes.
    pub static ACK_LANES: LockClass = LockClass {
        name: "osd.ack_lanes",
        rank: 450,
        no_block_while_held: true,
    };
    /// `OsdInner::hb_peers` — heartbeat last-seen timestamps (leaf; taken
    /// alone by the heartbeat ticker and the ping/pong handlers).
    pub static HB_PEERS: LockClass = LockClass {
        name: "osd.hb_peers",
        rank: 455,
        no_block_while_held: true,
    };
    /// `WriteOp::trace` — per-op trace timestamps (leaf).
    pub static OP_TRACE: LockClass = LockClass {
        name: "op.trace",
        rank: 470,
        no_block_while_held: true,
    };
    /// `WriteOp::progress` — per-op completion bookkeeping (leaf).
    pub static OP_PROGRESS: LockClass = LockClass {
        name: "op.progress",
        rank: 480,
        no_block_while_held: true,
    };
    /// `WriteOp::permit` — per-op throttle permit slot. Ranks *below* the
    /// throttle: dropping the permit re-enters `Throttle::release`.
    pub static OP_PERMIT: LockClass = LockClass {
        name: "op.permit",
        rank: 490,
        no_block_while_held: true,
    };
    /// `Journal` ring state (waits on its own work/space condvars). Also
    /// serializes group-commit records: the `committing` flag guarded
    /// here is what keeps inline and batched commit callbacks in global
    /// sequence order.
    pub static JOURNAL_RING: LockClass = LockClass {
        name: "journal.ring",
        rank: 600,
        no_block_while_held: false,
    };
    /// `Throttle::state` — counting-semaphore state (waits on own cv).
    pub static THROTTLE: LockClass = LockClass {
        name: "filestore.throttle",
        rank: 700,
        no_block_while_held: false,
    };
    /// `Osd::workers` — join handles; shutdown path only, joins while held.
    pub static OSD_WORKERS: LockClass = LockClass {
        name: "osd.workers",
        rank: 900,
        no_block_while_held: false,
    };
    /// `FaultRegistry::state` — leaf lock consulted at injection sites,
    /// potentially while holding any hot-path lock.
    pub static FAULTS: LockClass = LockClass {
        name: "common.faults",
        rank: 950,
        no_block_while_held: true,
    };
}

/// The declared hierarchy as data, lowest rank first. Tests assert it is
/// strictly ordered; DESIGN.md renders from the same order.
pub static DECLARED_ORDER: &[&LockClass] = &[
    &classes::OP_QUEUE,
    &classes::OSD_QOS,
    &classes::MON_FAIL,
    &classes::OSD_MAP,
    &classes::OSD_PG_MAP,
    &classes::PG_STATE,
    &classes::PG_PENDING,
    &classes::REP_WAITS,
    &classes::PUSH_WAITS,
    &classes::REP_SEEN,
    &classes::PENDING_APPLY,
    &classes::APPLY_GATE,
    &classes::TRIM,
    &classes::OSD_CHANNEL_TX,
    &classes::ACK_LANES,
    &classes::HB_PEERS,
    &classes::OP_TRACE,
    &classes::OP_PROGRESS,
    &classes::OP_PERMIT,
    &classes::JOURNAL_RING,
    &classes::THROTTLE,
    &classes::OSD_WORKERS,
    &classes::FAULTS,
];

impl fmt::Debug for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LockClass({} rank={})", self.name, self.rank)
    }
}

// ------------------------------------------------------------------ //
// Debug-build runtime
// ------------------------------------------------------------------ //

#[cfg(debug_assertions)]
mod rt {
    use super::LockClass;
    use std::cell::RefCell;
    use std::collections::{BTreeMap, BTreeSet};
    // Sanctioned std::sync exception: the checker's own state must not go
    // through the tracked types it implements (xtask lint skips this file).
    use std::sync::Mutex;

    struct Held {
        class: &'static LockClass,
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    static NEXT_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

    /// Global order graph: class address → set of classes acquired while
    /// it was held. Names are carried for panic messages.
    struct Graph {
        edges: BTreeMap<usize, BTreeSet<usize>>,
        names: BTreeMap<usize, &'static str>,
    }

    static GRAPH: Mutex<Graph> = Mutex::new(Graph {
        edges: BTreeMap::new(),
        names: BTreeMap::new(),
    });

    fn id(class: &'static LockClass) -> usize {
        class as *const LockClass as usize
    }

    /// Depth-first path search `from → … → to` over the order graph.
    fn find_path(g: &Graph, from: usize, to: usize) -> Option<Vec<usize>> {
        let mut stack = vec![(from, vec![from])];
        let mut seen = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if !seen.insert(node) {
                continue;
            }
            if let Some(next) = g.edges.get(&node) {
                for &n in next {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push((n, p));
                }
            }
        }
        None
    }

    pub fn on_acquire(class: &'static LockClass) -> u64 {
        HELD.with(|h| {
            let held = h.borrow();
            for hl in held.iter() {
                if std::ptr::eq(hl.class, class) {
                    panic!(
                        "lockdep: recursive acquisition of lock class '{}' \
                         (already held by this thread)",
                        class.name
                    );
                }
                if hl.class.rank != super::UNRANKED
                    && class.rank != super::UNRANKED
                    && hl.class.rank >= class.rank
                {
                    panic!(
                        "lockdep: hierarchy violation: acquiring '{}' (rank {}) while \
                         holding '{}' (rank {}); see afc_common::lockdep::DECLARED_ORDER",
                        class.name, class.rank, hl.class.name, hl.class.rank
                    );
                }
            }
            // Record order edges held → class; a pre-existing reverse path
            // means two threads disagree on the order — report the cycle.
            if !held.is_empty() {
                let mut g = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
                g.names.insert(id(class), class.name);
                for hl in held.iter() {
                    g.names.insert(id(hl.class), hl.class.name);
                    let (from, to) = (id(hl.class), id(class));
                    if g.edges.get(&from).is_some_and(|s| s.contains(&to)) {
                        continue;
                    }
                    if let Some(path) = find_path(&g, to, from) {
                        let labels: Vec<&str> = path.iter().map(|i| g.names[i]).collect();
                        // `path` runs from the acquired class to the held
                        // class, so it already names both endpoints.
                        panic!(
                            "lockdep: lock-order cycle: this thread acquires \
                             '{}' while holding '{}', but the order {} \
                             was already established",
                            class.name,
                            hl.class.name,
                            labels
                                .iter()
                                .map(|l| format!("'{l}'"))
                                .collect::<Vec<_>>()
                                .join(" -> "),
                        );
                    }
                    g.edges.entry(from).or_default().insert(to);
                }
            }
            drop(held);
            let token = NEXT_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            h.borrow_mut().push(Held { class, token });
            token
        })
    }

    pub fn on_release(token: u64) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            // Usually LIFO, but guards may be dropped out of order.
            if let Some(pos) = held.iter().rposition(|hl| hl.token == token) {
                held.remove(pos);
            }
        });
    }

    /// Panic if any held class forbids blocking sections. `exempt` names a
    /// mutex a condvar releases for the duration of the wait.
    pub fn assert_blockable(what: &str, exempt: Option<u64>) {
        HELD.with(|h| {
            for hl in h.borrow().iter() {
                if Some(hl.token) == exempt {
                    continue;
                }
                if hl.class.no_block_while_held {
                    panic!(
                        "lockdep: blocking section '{what}' entered while \
                         holding '{}' (declared no_block_while_held)",
                        hl.class.name
                    );
                }
            }
        });
    }

    pub fn held_names() -> Vec<&'static str> {
        HELD.with(|h| h.borrow().iter().map(|hl| hl.class.name).collect())
    }
}

/// Assert the current thread may enter a blocking section (journal-full
/// wait, throttle wait, blocking channel wait). No-op in release builds.
#[inline]
pub fn assert_blockable(what: &str) {
    #[cfg(debug_assertions)]
    rt::assert_blockable(what, None);
    #[cfg(not(debug_assertions))]
    let _ = what;
}

/// Names of the lock classes the current thread holds (debug builds;
/// always empty in release). Test/diagnostic helper.
#[inline]
pub fn held_lock_names() -> Vec<&'static str> {
    #[cfg(debug_assertions)]
    {
        rt::held_names()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

// ------------------------------------------------------------------ //
// Tracked primitives
// ------------------------------------------------------------------ //

/// A [`parking_lot::Mutex`] that participates in lockdep checking.
pub struct TrackedMutex<T> {
    #[cfg(debug_assertions)]
    class: &'static LockClass,
    inner: parking_lot::Mutex<T>,
}

/// RAII guard for [`TrackedMutex`]; releases (and un-records) on drop.
pub struct TrackedMutexGuard<'a, T> {
    inner: parking_lot::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: u64,
}

impl<T> TrackedMutex<T> {
    /// Create a mutex belonging to `class`.
    #[inline]
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = class;
        TrackedMutex {
            #[cfg(debug_assertions)]
            class,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Acquire, enforcing the declared order in debug builds.
    #[inline]
    pub fn lock(&self) -> TrackedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = rt::on_acquire(self.class);
        TrackedMutexGuard {
            inner: self.inner.lock(),
            #[cfg(debug_assertions)]
            token,
        }
    }

    /// Non-blocking acquire. Order checks still apply on success: a
    /// try-lock taken out of order is the same latent deadlock.
    #[inline]
    pub fn try_lock(&self) -> Option<TrackedMutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        #[cfg(debug_assertions)]
        let token = rt::on_acquire(self.class);
        Some(TrackedMutexGuard {
            inner,
            #[cfg(debug_assertions)]
            token,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T> std::ops::Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        rt::on_release(self.token);
    }
}

/// Condition variable for [`TrackedMutex`]. Waits release the guarded
/// mutex, so that mutex is exempt from the blocking-section check; every
/// *other* held lock is still checked.
pub struct TrackedCondvar {
    inner: parking_lot::Condvar,
}

impl TrackedCondvar {
    /// Create a condition variable.
    #[inline]
    pub const fn new() -> Self {
        TrackedCondvar {
            inner: parking_lot::Condvar::new(),
        }
    }

    /// Block until notified.
    #[inline]
    pub fn wait<T>(&self, guard: &mut TrackedMutexGuard<'_, T>) {
        #[cfg(debug_assertions)]
        rt::assert_blockable("condvar wait", Some(guard.token));
        self.inner.wait(&mut guard.inner);
    }

    /// Block until notified or `deadline` passes.
    #[inline]
    pub fn wait_until<T>(
        &self,
        guard: &mut TrackedMutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> parking_lot::WaitTimeoutResult {
        #[cfg(debug_assertions)]
        rt::assert_blockable("condvar wait_until", Some(guard.token));
        self.inner.wait_until(&mut guard.inner, deadline)
    }

    /// Block until notified or `dur` elapses; true result ⇒ timed out.
    #[inline]
    pub fn wait_for<T>(
        &self,
        guard: &mut TrackedMutexGuard<'_, T>,
        dur: std::time::Duration,
    ) -> parking_lot::WaitTimeoutResult {
        #[cfg(debug_assertions)]
        rt::assert_blockable("condvar wait_for", Some(guard.token));
        self.inner.wait_for(&mut guard.inner, dur)
    }

    /// Wake one waiter.
    #[inline]
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    #[inline]
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for TrackedCondvar {
    fn default() -> Self {
        TrackedCondvar::new()
    }
}

impl fmt::Debug for TrackedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TrackedCondvar")
    }
}

/// A [`parking_lot::RwLock`] that participates in lockdep checking. Both
/// read and write acquisitions occupy the class's ordering position.
pub struct TrackedRwLock<T> {
    #[cfg(debug_assertions)]
    class: &'static LockClass,
    inner: parking_lot::RwLock<T>,
}

/// Shared-access guard for [`TrackedRwLock`].
pub struct TrackedRwLockReadGuard<'a, T> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: u64,
}

/// Exclusive-access guard for [`TrackedRwLock`].
pub struct TrackedRwLockWriteGuard<'a, T> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: u64,
}

impl<T> TrackedRwLock<T> {
    /// Create a reader-writer lock belonging to `class`.
    #[inline]
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = class;
        TrackedRwLock {
            #[cfg(debug_assertions)]
            class,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Acquire shared access.
    #[inline]
    pub fn read(&self) -> TrackedRwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = rt::on_acquire(self.class);
        TrackedRwLockReadGuard {
            inner: self.inner.read(),
            #[cfg(debug_assertions)]
            token,
        }
    }

    /// Acquire exclusive access.
    #[inline]
    pub fn write(&self) -> TrackedRwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = rt::on_acquire(self.class);
        TrackedRwLockWriteGuard {
            inner: self.inner.write(),
            #[cfg(debug_assertions)]
            token,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for TrackedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

impl<T> std::ops::Deref for TrackedRwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for TrackedRwLockReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        rt::on_release(self.token);
    }
}

impl<T> std::ops::Deref for TrackedRwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for TrackedRwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for TrackedRwLockWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        rt::on_release(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_order_is_strictly_ranked_and_uniquely_named() {
        for w in DECLARED_ORDER.windows(2) {
            assert!(
                w[0].rank < w[1].rank,
                "'{}' (rank {}) must rank strictly below '{}' (rank {})",
                w[0].name,
                w[0].rank,
                w[1].name,
                w[1].rank
            );
        }
        let mut names: Vec<_> = DECLARED_ORDER.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DECLARED_ORDER.len(), "duplicate class names");
    }

    #[test]
    fn in_order_nesting_is_allowed() {
        let outer = TrackedMutex::new(&classes::PG_STATE, 1u32);
        let inner = TrackedMutex::new(&classes::JOURNAL_RING, 2u32);
        let a = outer.lock();
        let b = inner.lock();
        assert_eq!(*a + *b, 3);
        assert_eq!(held_lock_names(), vec!["pg.state", "journal.ring"]);
        drop(b);
        drop(a);
        assert!(held_lock_names().is_empty());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "lockdep compiled out in release")]
    fn rank_inversion_panics() {
        let low = TrackedMutex::new(&classes::OP_QUEUE, ());
        let high = TrackedMutex::new(&classes::THROTTLE, ());
        let err = std::thread::scope(|s| {
            s.spawn(|| {
                let _h = high.lock();
                let _l = low.lock(); // throttle(700) held, op_queue(100) wanted
            })
            .join()
        });
        let msg = *err.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("hierarchy violation"), "{msg}");
        assert!(
            msg.contains("osd.op_queue") && msg.contains("filestore.throttle"),
            "{msg}"
        );
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "lockdep compiled out in release")]
    fn recursive_same_class_panics() {
        static A: LockClass = LockClass {
            name: "test.recursive",
            rank: UNRANKED,
            no_block_while_held: false,
        };
        let m1 = TrackedMutex::new(&A, ());
        let m2 = TrackedMutex::new(&A, ());
        let err = std::thread::scope(|s| {
            s.spawn(|| {
                let _a = m1.lock();
                let _b = m2.lock(); // distinct instance, same class
            })
            .join()
        });
        let msg = *err.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("recursive acquisition"), "{msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "lockdep compiled out in release")]
    fn cross_thread_order_cycle_is_detected() {
        // Unranked classes: only the order graph can catch the inversion.
        static A: LockClass = LockClass {
            name: "test.cycle_a",
            rank: UNRANKED,
            no_block_while_held: false,
        };
        static B: LockClass = LockClass {
            name: "test.cycle_b",
            rank: UNRANKED,
            no_block_while_held: false,
        };
        let ma = std::sync::Arc::new(TrackedMutex::new(&A, ()));
        let mb = std::sync::Arc::new(TrackedMutex::new(&B, ()));
        // Thread 1 establishes A -> B without contention.
        {
            let _a = ma.lock();
            let _b = mb.lock();
        }
        // Thread 2 attempts B -> A: lockdep must panic on the first
        // acquisition, before any actual deadlock can form.
        let (ma2, mb2) = (std::sync::Arc::clone(&ma), std::sync::Arc::clone(&mb));
        let err = std::thread::spawn(move || {
            let _b = mb2.lock();
            let _a = ma2.lock();
        })
        .join();
        let msg = *err.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("lock-order cycle"), "{msg}");
        assert!(
            msg.contains("test.cycle_a") && msg.contains("test.cycle_b"),
            "{msg}"
        );
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "lockdep compiled out in release")]
    fn blocking_while_holding_noblock_class_panics() {
        let q = TrackedMutex::new(&classes::PG_PENDING, ());
        let err = std::thread::scope(|s| {
            s.spawn(|| {
                let _g = q.lock();
                assert_blockable("journal submit");
            })
            .join()
        });
        let msg = *err.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("blocking section"), "{msg}");
        assert!(msg.contains("pg.pending"), "{msg}");
    }

    #[test]
    fn blocking_while_holding_pg_state_is_allowed() {
        // The write path journals under the PG lock today; lockdep must
        // not flag it.
        let st = TrackedMutex::new(&classes::PG_STATE, ());
        let _g = st.lock();
        assert_blockable("journal submit under pg lock");
    }

    #[test]
    fn condvar_wait_exempts_own_mutex() {
        let m = std::sync::Arc::new(TrackedMutex::new(&classes::OP_QUEUE, false));
        let cv = std::sync::Arc::new(TrackedCondvar::new());
        let (m2, cv2) = (std::sync::Arc::clone(&m), std::sync::Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                // OP_QUEUE is no_block, but the wait releases it: allowed.
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn try_lock_checks_and_releases() {
        let m = TrackedMutex::new(&classes::REP_WAITS, 7u32);
        {
            let g = m.try_lock().expect("uncontended");
            assert_eq!(*g, 7);
            assert!(m.try_lock().is_none(), "second try_lock must fail");
        }
        assert!(m.try_lock().is_some(), "released after guard drop");
        assert!(held_lock_names().is_empty());
    }

    #[test]
    fn rwlock_participates_in_ordering() {
        let maps = TrackedRwLock::new(&classes::OSD_PG_MAP, 5u32);
        {
            let r = maps.read();
            assert_eq!(*r, 5);
            assert_eq!(held_lock_names(), vec!["osd.pg_map"]);
        }
        {
            let mut w = maps.write();
            *w = 6;
        }
        assert_eq!(*maps.read(), 6);
        assert!(held_lock_names().is_empty());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "lockdep compiled out in release")]
    fn out_of_order_guard_drop_keeps_held_set_consistent() {
        let a = TrackedMutex::new(&classes::PG_STATE, ());
        let b = TrackedMutex::new(&classes::JOURNAL_RING, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // drop outer first
        assert_eq!(held_lock_names(), vec!["journal.ring"]);
        drop(gb);
        assert!(held_lock_names().is_empty());
    }
}
