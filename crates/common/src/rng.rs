//! Deterministic randomness and fast mixing hashes.
//!
//! Every stochastic component in the workspace (workload generators, device
//! jitter, CRUSH draws) derives its randomness from an explicit seed so that
//! tests and benchmark harnesses are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construct a seeded [`StdRng`]. All workspace RNGs flow through here so a
/// single seed printed by a harness reproduces its entire run.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index, so concurrent
/// components get independent-but-deterministic streams.
pub fn child_seed(parent: u64, stream: u64) -> u64 {
    mix64(parent ^ mix64(stream.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// A fast 64-bit finalizing mix (splitmix64 finalizer). Used as the stable
/// hash underlying CRUSH draws, PG mapping, and dedup fingerprints.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// One FNV-1a byte fold.
#[inline(always)]
fn fnv_step(h: u64, b: u8) -> u64 {
    (h ^ b as u64).wrapping_mul(FNV_PRIME)
}

/// Stable 64-bit hash of a byte slice (FNV-1a folded through [`mix64`]).
/// Not cryptographic; collision-resistant enough for dedup fingerprinting in
/// the SolidFire model and bloom filters in the LSM store.
///
/// Hot on the journal-entry checksum and dedup paths, so the inner loop is
/// branchless wide-word folding: an unrolled 32-byte main loop of 8-byte
/// little-endian folds, then a single jump-table dispatch for the ≤7-byte
/// tail with straight-line byte steps per arm — no per-byte loop branch
/// anywhere. Output is bit-identical to the original chunked/per-byte
/// formulation (see `matches_reference_formulation`), so checksums stored
/// in pre-change journal images still validate on replay.
pub fn hash_bytes(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let (words, tail) = data.split_at(data.len() & !7);
    let word = |c: &[u8]| u64::from_le_bytes(c.try_into().expect("exact word"));
    let mut blocks = words.chunks_exact(32);
    for c in &mut blocks {
        let (a, b) = (word(&c[0..8]), word(&c[8..16]));
        let (d, e) = (word(&c[16..24]), word(&c[24..32]));
        h = (h ^ a).wrapping_mul(FNV_PRIME);
        h = (h ^ b).wrapping_mul(FNV_PRIME);
        h = (h ^ d).wrapping_mul(FNV_PRIME);
        h = (h ^ e).wrapping_mul(FNV_PRIME);
    }
    for c in blocks.remainder().chunks_exact(8) {
        h = (h ^ word(c)).wrapping_mul(FNV_PRIME);
    }
    h = match *tail {
        [] => h,
        [a] => fnv_step(h, a),
        [a, b] => fnv_step(fnv_step(h, a), b),
        [a, b, c] => fnv_step(fnv_step(fnv_step(h, a), b), c),
        [a, b, c, d] => fnv_step(fnv_step(fnv_step(fnv_step(h, a), b), c), d),
        [a, b, c, d, e] => fnv_step(fnv_step(fnv_step(fnv_step(fnv_step(h, a), b), c), d), e),
        [a, b, c, d, e, f] => fnv_step(
            fnv_step(fnv_step(fnv_step(fnv_step(fnv_step(h, a), b), c), d), e),
            f,
        ),
        [a, b, c, d, e, f, g] => fnv_step(
            fnv_step(
                fnv_step(fnv_step(fnv_step(fnv_step(fnv_step(h, a), b), c), d), e),
                f,
            ),
            g,
        ),
        _ => unreachable!("tail is < 8 bytes"),
    };
    mix64(h ^ (data.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn child_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(child_seed(7, i)));
        }
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn hash_bytes_differs_on_length_and_content() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefgi"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefg"));
        assert_eq!(hash_bytes(b"hello world"), hash_bytes(b"hello world"));
    }

    /// The original pre-optimization formulation: 8-byte chunks then a
    /// per-byte remainder loop. The branchless rewrite must be
    /// bit-identical so checksums in journal images recorded before the
    /// change still validate on replay.
    fn reference_hash(data: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("exact chunk"));
            h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
        }
        for &b in chunks.remainder() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        mix64(h ^ (data.len() as u64))
    }

    #[test]
    fn matches_reference_formulation() {
        // Every length 0..=67 (covers all tail arms and unroll boundaries
        // at 8, 32, 64) with varied content, plus larger random buffers.
        for len in 0..=67usize {
            let asc: Vec<u8> = (0..len as u8).collect();
            let rev: Vec<u8> = (0..len as u8).rev().map(|b| b ^ 0xa5).collect();
            for buf in [asc, rev, vec![0u8; len], vec![0xffu8; len]] {
                assert_eq!(hash_bytes(&buf), reference_hash(&buf), "len={len}");
            }
        }
        let mut rng = seeded(0xc0ffee);
        for _ in 0..64 {
            let len = rng.random_range(0..8192usize);
            let buf: Vec<u8> = (0..len).map(|_| rng.random()).collect();
            assert_eq!(hash_bytes(&buf), reference_hash(&buf), "len={len}");
        }
    }

    #[test]
    fn hash_bytes_avalanche_rough() {
        // Flipping one bit should change roughly half the output bits.
        let a = hash_bytes(b"the quick brown fox jumps over the lazy dog.");
        let b = hash_bytes(b"the quick brown fox jumps over the lazy dog,");
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }
}
