//! Deterministic randomness and fast mixing hashes.
//!
//! Every stochastic component in the workspace (workload generators, device
//! jitter, CRUSH draws) derives its randomness from an explicit seed so that
//! tests and benchmark harnesses are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construct a seeded [`StdRng`]. All workspace RNGs flow through here so a
/// single seed printed by a harness reproduces its entire run.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a stream index, so concurrent
/// components get independent-but-deterministic streams.
pub fn child_seed(parent: u64, stream: u64) -> u64 {
    mix64(parent ^ mix64(stream.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// A fast 64-bit finalizing mix (splitmix64 finalizer). Used as the stable
/// hash underlying CRUSH draws, PG mapping, and dedup fingerprints.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Stable 64-bit hash of a byte slice (FNV-1a folded through [`mix64`]).
/// Not cryptographic; collision-resistant enough for dedup fingerprinting in
/// the SolidFire model and bloom filters in the LSM store.
pub fn hash_bytes(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    // Consume 8 bytes at a time for speed; this is on the dedup hot path.
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("exact chunk"));
        h = (h ^ v).wrapping_mul(0x1000_0000_01b3);
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    mix64(h ^ (data.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn child_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(child_seed(7, i)));
        }
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn hash_bytes_differs_on_length_and_content() {
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefgi"));
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefg"));
        assert_eq!(hash_bytes(b"hello world"), hash_bytes(b"hello world"));
    }

    #[test]
    fn hash_bytes_avalanche_rough() {
        // Flipping one bit should change roughly half the output bits.
        let a = hash_bytes(b"the quick brown fox jumps over the lazy dog.");
        let b = hash_bytes(b"the quick brown fox jumps over the lazy dog,");
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }
}
