//! Fixed-width table rendering for benchmark harness output.
//!
//! Every figure harness prints its rows through [`Table`] so the output is
//! aligned, diffable and easy to compare against EXPERIMENTS.md.

/// A simple right-padded text table.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Short rows are padded with empty cells; long rows are
    /// rejected to catch harness bugs early.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(cells.len() <= self.header.len(), "row wider than header");
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table to a string (one trailing newline).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "iops", "lat"]);
        t.row(vec!["community", "16000", "58.2ms"]);
        t.row(vec!["afceph", "81000", "7.9ms"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("community"));
        // Columns align: "iops" column starts at same offset in all rows.
        let off = lines[0].find("iops").unwrap();
        assert_eq!(&lines[2][off..off + 5], "16000");
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }

    #[test]
    #[should_panic(expected = "row wider than header")]
    fn rejects_wide_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x", "y"]);
    }
}
