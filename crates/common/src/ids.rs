//! Strongly-typed identifiers used across the storage stack.
//!
//! Mirrors the entities in the paper's Ceph-like architecture: nodes host
//! OSD daemons, objects belong to pools, objects are grouped into placement
//! groups (PGs), and cluster maps are versioned by epochs.

use std::fmt;

use crate::rng::mix64;

/// A physical server node hosting one or more OSDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// An object storage daemon (one per RAID-0 SSD group in the paper's setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OsdId(pub u32);

/// A storage pool (namespace with its own PG count and replication factor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PoolId(pub u32);

/// A placement group within a pool: the unit of placement, ordering and
/// locking in the OSD ("PG lock" in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PgId {
    /// Owning pool.
    pub pool: PoolId,
    /// Sequence number of the PG within the pool, `0..pg_num`.
    pub seq: u32,
}

/// A client session (one per VM / FIO job in the evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

/// A logical volume for QoS accounting: the unit that owns a min/max/burst
/// IOPS spec in the per-volume scheduler. Volume 0 is the shared
/// best-effort volume (untagged traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VolumeId(pub u64);

/// A monotonically increasing cluster-map version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Epoch(pub u64);

/// A per-client monotonically increasing operation id; `(ClientId, OpId)`
/// uniquely identifies a request in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub u64);

/// A named object within a pool. Object names are interned as `String`s at
/// this layer; hot paths hash them once via [`ObjectId::name_hash`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// Owning pool.
    pub pool: PoolId,
    /// Object name, e.g. `rbd_data.vm0.0000000000000004`.
    pub name: String,
}

impl ObjectId {
    /// Create an object id in `pool` with the given name.
    pub fn new(pool: PoolId, name: impl Into<String>) -> Self {
        ObjectId {
            pool,
            name: name.into(),
        }
    }

    /// Stable 64-bit hash of the object name (used for PG mapping).
    pub fn name_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in self.name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        mix64(h ^ ((self.pool.0 as u64) << 32))
    }

    /// Map this object to a PG, Ceph-style: `pg = hash(name) % pg_num`.
    pub fn pg(&self, pg_num: u32) -> PgId {
        assert!(pg_num > 0, "pg_num must be positive");
        PgId {
            pool: self.pool,
            seq: (self.name_hash() % pg_num as u64) as u32,
        }
    }
}

impl Epoch {
    /// The epoch before any map exists.
    pub const ZERO: Epoch = Epoch(0);

    /// The next epoch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl OpId {
    /// The next op id.
    #[must_use]
    pub fn next(self) -> OpId {
        OpId(self.0 + 1)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for OsdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "osd.{}", self.0)
    }
}

impl fmt::Display for PoolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool{}", self.0)
    }
}

impl fmt::Display for PgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:x}", self.pool.0, self.seq)
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client.{}", self.0)
    }
}

impl fmt::Display for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol{}", self.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.pool, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_pg_mapping_is_stable() {
        let o = ObjectId::new(PoolId(1), "rbd_data.vm0.0000000000000004");
        assert_eq!(o.pg(128), o.pg(128));
        assert_eq!(o.pg(128).pool, PoolId(1));
        assert!(o.pg(128).seq < 128);
    }

    #[test]
    fn object_pg_mapping_spreads() {
        // 1000 sequential object names should land on many distinct PGs.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            let o = ObjectId::new(PoolId(0), format!("rbd_data.img.{i:016x}"));
            seen.insert(o.pg(128).seq);
        }
        assert!(seen.len() > 100, "only {} of 128 PGs hit", seen.len());
    }

    #[test]
    fn name_hash_depends_on_pool() {
        let a = ObjectId::new(PoolId(0), "x");
        let b = ObjectId::new(PoolId(1), "x");
        assert_ne!(a.name_hash(), b.name_hash());
    }

    #[test]
    #[should_panic(expected = "pg_num must be positive")]
    fn zero_pg_num_panics() {
        ObjectId::new(PoolId(0), "x").pg(0);
    }

    #[test]
    fn epoch_and_opid_advance() {
        assert_eq!(Epoch::ZERO.next(), Epoch(1));
        assert_eq!(OpId(41).next(), OpId(42));
    }

    #[test]
    fn display_formats() {
        assert_eq!(OsdId(3).to_string(), "osd.3");
        assert_eq!(
            PgId {
                pool: PoolId(2),
                seq: 0x1f
            }
            .to_string(),
            "2.1f"
        );
        assert_eq!(NodeId(1).to_string(), "node1");
        assert_eq!(ClientId(7).to_string(), "client.7");
        assert_eq!(VolumeId(5).to_string(), "vol5");
        assert_eq!(Epoch(9).to_string(), "e9");
    }
}
