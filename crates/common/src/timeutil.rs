//! Sleeping and timing helpers used by the device models.
//!
//! All simulated device latency flows through [`sleep_for`]/[`sleep_until`],
//! so the fidelity of every modeled service time is bounded by how precisely
//! a thread can wait. Plain `thread::sleep` is *not* precise enough: Linux
//! applies a default per-thread **timer slack** of 50 µs, so a requested
//! 80 µs wait wakes at ~130–145 µs — a >60% error on the NVRAM-scale waits
//! the journal and replication hops model.
//!
//! [`sleep_until`] therefore implements a hybrid precise wait:
//!
//! 1. once per thread, shrink the timer slack to 1 µs via
//!    `prctl(PR_SET_TIMERSLACK)` (cheap, no capabilities needed);
//! 2. if the remaining wait exceeds a small reserve, `thread::sleep` for
//!    `remaining − reserve` so the CPU stays available to other threads —
//!    on the single-core reference host this matters;
//! 3. spin (`std::hint::spin_loop`) across the final few tens of
//!    microseconds to land on the deadline.
//!
//! The result is waits accurate to a few microseconds while still yielding
//! the CPU for all but the tail of each wait.

use std::time::{Duration, Instant};

/// Tail window that is spun rather than slept. Chosen above the observed
/// post-`PR_SET_TIMERSLACK` wakeup error (~15–25 µs) so the kernel sleep
/// never overshoots the deadline.
const SPIN_RESERVE: Duration = Duration::from_micros(60);

/// `prctl(2)` constants for per-thread timer slack (linux/prctl.h).
const PR_SET_TIMERSLACK: i32 = 29;

extern "C" {
    fn prctl(option: i32, arg2: u64, arg3: u64, arg4: u64, arg5: u64) -> i32;
}

/// Shrink this thread's timer slack to 1 µs (default is 50 µs), once.
#[inline]
fn tighten_timer_slack() {
    thread_local! {
        static TIGHTENED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    }
    TIGHTENED.with(|t| {
        if !t.get() {
            // Best effort: a failure just means sleeps stay coarse.
            unsafe { prctl(PR_SET_TIMERSLACK, 1_000, 0, 0, 0) };
            t.set(true);
        }
    });
}

/// Sleep for `d` with microsecond-scale precision. Zero-duration calls
/// return immediately.
#[inline]
pub fn sleep_for(d: Duration) {
    if d > Duration::ZERO {
        sleep_until(Instant::now() + d);
    }
}

/// Sleep until `deadline` with microsecond-scale precision (no-op if
/// already past). Kernel-sleeps the bulk of the wait, spins the tail.
pub fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if deadline <= now {
        return;
    }
    tighten_timer_slack();
    let remaining = deadline - now;
    if remaining > SPIN_RESERVE {
        std::thread::sleep(remaining - SPIN_RESERVE);
    }
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// A simple stopwatch for stage-latency instrumentation (Figure 3).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Start timing now.
    pub fn new() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start (or last [`Stopwatch::lap`]).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Return elapsed time and restart the watch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.start;
        self.start = now;
        d
    }
}

/// Format a duration compactly for table output: `842us`, `3.2ms`, `1.75s`.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_for_zero_is_instant() {
        let t = Instant::now();
        sleep_for(Duration::ZERO);
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn sleep_for_waits_at_least_requested() {
        let t = Instant::now();
        sleep_for(Duration::from_millis(10));
        assert!(t.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn sleep_until_past_deadline_returns() {
        let t = Instant::now();
        sleep_until(Instant::now() - Duration::from_secs(1));
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn short_sleeps_are_precise() {
        // The whole point of the hybrid wait: an 80 µs request must not
        // cost 140 µs. Warm the thread's slack setting first, then check
        // the median of several samples stays within a third of the
        // request (generous to absorb scheduler noise in CI).
        sleep_for(Duration::from_micros(10));
        let mut samples: Vec<Duration> = (0..9)
            .map(|_| {
                let t = Instant::now();
                sleep_for(Duration::from_micros(80));
                t.elapsed()
            })
            .collect();
        samples.sort();
        let med = samples[samples.len() / 2];
        assert!(med >= Duration::from_micros(80), "{med:?}");
        assert!(med < Duration::from_micros(110), "{med:?}");
    }

    #[test]
    fn stopwatch_laps() {
        let mut w = Stopwatch::new();
        sleep_for(Duration::from_millis(5));
        let l1 = w.lap();
        assert!(l1 >= Duration::from_millis(5));
        // After a lap the elapsed time restarts.
        assert!(w.elapsed() < l1);
    }

    #[test]
    fn fmt_dur_ranges() {
        assert_eq!(fmt_dur(Duration::from_micros(842)), "842us");
        assert_eq!(fmt_dur(Duration::from_micros(3_200)), "3.20ms");
        assert_eq!(fmt_dur(Duration::from_micros(1_750_000)), "1.75s");
    }
}
