//! Sleeping and timing helpers used by the device models.
//!
//! All simulated device latency flows through [`sleep_for`]/[`sleep_until`].
//! On this project's single-core reference host, spinning would steal CPU
//! from the very threads whose contention we are measuring, so waiting is
//! plain `thread::sleep` (Linux hrtimer resolution, ~50 µs worst case, is
//! well below the ≥100 µs service times every model uses).

use std::time::{Duration, Instant};

/// Sleep for `d`. Zero-duration calls return immediately.
#[inline]
pub fn sleep_for(d: Duration) {
    if d > Duration::ZERO {
        std::thread::sleep(d);
    }
}

/// Sleep until `deadline` (no-op if already past).
#[inline]
pub fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if deadline > now {
        std::thread::sleep(deadline - now);
    }
}

/// A simple stopwatch for stage-latency instrumentation (Figure 3).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Start timing now.
    pub fn new() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start (or last [`Stopwatch::lap`]).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Return elapsed time and restart the watch.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.start;
        self.start = now;
        d
    }
}

/// Format a duration compactly for table output: `842us`, `3.2ms`, `1.75s`.
pub fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_for_zero_is_instant() {
        let t = Instant::now();
        sleep_for(Duration::ZERO);
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn sleep_for_waits_at_least_requested() {
        let t = Instant::now();
        sleep_for(Duration::from_millis(10));
        assert!(t.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn sleep_until_past_deadline_returns() {
        let t = Instant::now();
        sleep_until(Instant::now() - Duration::from_secs(1));
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn stopwatch_laps() {
        let mut w = Stopwatch::new();
        sleep_for(Duration::from_millis(5));
        let l1 = w.lap();
        assert!(l1 >= Duration::from_millis(5));
        // After a lap the elapsed time restarts.
        assert!(w.elapsed() < l1);
    }

    #[test]
    fn fmt_dur_ranges() {
        assert_eq!(fmt_dur(Duration::from_micros(842)), "842us");
        assert_eq!(fmt_dur(Duration::from_micros(3_200)), "3.20ms");
        assert_eq!(fmt_dur(Duration::from_micros(1_750_000)), "1.75s");
    }
}
