//! Named atomic counters for instrumentation.
//!
//! The paper's analysis relies on internal accounting (syscall counts,
//! metadata-read bytes, lock wait time, KV write amplification). Components
//! expose a [`CounterSet`]; benchmark harnesses snapshot and diff them. The
//! hot-path cost is a single relaxed atomic add per event.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A handle to a single counter. Cheap to clone; all clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Create a detached counter at zero. Use this for cells that live in
    /// a component's stats struct and are registered into a
    /// [`crate::metrics::Metrics`] registry separately.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named counters. Lookup is slow-path only: components fetch
/// their [`Counter`] handles once at construction.
#[derive(Clone, Default, Debug)]
pub struct CounterSet {
    inner: Arc<RwLock<BTreeMap<String, Counter>>>,
}

impl CounterSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch (creating if absent) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().get(name) {
            return c.clone();
        }
        let mut w = self.inner.write();
        w.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Current value of `name` (0 if never created).
    pub fn get(&self, name: &str) -> u64 {
        self.inner.read().get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Snapshot all counters, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Difference of two snapshots (`later - earlier`), omitting zero deltas.
    pub fn diff(
        earlier: &BTreeMap<String, u64>,
        later: &BTreeMap<String, u64>,
    ) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (k, &v) in later {
            let before = earlier.get(k).copied().unwrap_or(0);
            if v > before {
                out.insert(k.clone(), v - before);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments() {
        let set = CounterSet::new();
        let c = set.counter("ops");
        c.inc();
        c.add(9);
        assert_eq!(set.get("ops"), 10);
    }

    #[test]
    fn handles_share_state() {
        let set = CounterSet::new();
        let a = set.counter("x");
        let b = set.counter("x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn missing_counter_reads_zero() {
        assert_eq!(CounterSet::new().get("nope"), 0);
    }

    #[test]
    fn snapshot_and_diff() {
        let set = CounterSet::new();
        set.counter("a").add(5);
        let s1 = set.snapshot();
        set.counter("a").add(3);
        set.counter("b").add(7);
        let s2 = set.snapshot();
        let d = CounterSet::diff(&s1, &s2);
        assert_eq!(d.get("a"), Some(&3));
        assert_eq!(d.get("b"), Some(&7));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let set = CounterSet::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = set.counter("n");
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(set.get("n"), 80_000);
    }
}
