//! Log-bucketed latency histogram.
//!
//! An HdrHistogram-style structure: microsecond-resolution values are placed
//! into buckets whose width grows geometrically, giving ~3% relative error
//! over a 1 µs .. ~70 s range with a few KiB of memory. Recording is lock-free
//! (callers own their histogram and merge at the end — the pattern the
//! workload runner uses, one histogram per job thread).

use std::time::Duration;

/// Buckets per octave; 32 sub-buckets bounds relative error at ~3%.
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Number of octaves covered above the linear range: 1µs * 2^26 ≈ 67s.
const OCTAVES: usize = 26;
const NBUCKETS: usize = SUB * (OCTAVES + 1);

/// A latency histogram with geometric buckets (µs resolution).
#[derive(Clone)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// Create an empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    #[inline]
    fn bucket_of(us: u64) -> usize {
        if us < SUB as u64 {
            return us as usize;
        }
        // v >= SUB: normalize so (v >> shift) lands in [SUB, 2*SUB).
        let msb = 63 - us.leading_zeros(); // msb >= SUB_BITS
        let shift = msb - SUB_BITS;
        let sub = ((us >> shift) as usize) - SUB; // in [0, SUB)
        let idx = SUB + shift as usize * SUB + sub;
        idx.min(NBUCKETS - 1)
    }

    /// Representative (midpoint) value of bucket `idx`, in µs.
    fn bucket_value(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let shift = ((idx - SUB) / SUB) as u32;
        let sub = ((idx - SUB) % SUB) as u64;
        let low = (SUB as u64 + sub) << shift;
        let width = 1u64 << shift;
        low + width / 2
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket_of(us)] += 1;
        self.total += 1;
        self.sum_us += us as u128;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Record a latency expressed in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.record(Duration::from_micros(us));
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of the recorded samples.
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.sum_us / self.total as u128) as u64)
    }

    /// Smallest recorded sample ([`Duration::ZERO`] when empty).
    pub fn min(&self) -> Duration {
        if self.total == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.min_us)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_micros(self.max_us)
    }

    /// Value at quantile `q` in `[0, 1]` (e.g. 0.99 for p99).
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_micros(Self::bucket_value(idx).min(self.max_us));
            }
        }
        self.max()
    }

    /// Median (p50).
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Duration {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }
}

impl std::fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHist")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.min(), Duration::ZERO);
    }

    #[test]
    fn single_value_quantiles() {
        let mut h = LatencyHist::new();
        h.record(Duration::from_micros(1500));
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).as_micros() as f64;
            assert!((v - 1500.0).abs() / 1500.0 < 0.05, "q={q} v={v}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut h = LatencyHist::new();
        for us in [1u64, 7, 33, 100, 999, 12_345, 1_000_000, 30_000_000] {
            h = LatencyHist::new();
            h.record_us(us);
            let got = h.p50().as_micros() as f64;
            let want = us as f64;
            assert!(
                (got - want).abs() / want < 0.06 || (got - want).abs() <= 1.0,
                "us={us} got={got}"
            );
        }
        let _ = h;
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = LatencyHist::new();
        for i in 1..=10_000u64 {
            h.record_us(i);
        }
        let mut prev = Duration::ZERO;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0);
            assert!(q >= prev, "quantile not monotone at {i}");
            prev = q;
        }
    }

    #[test]
    fn uniform_distribution_quantiles() {
        let mut h = LatencyHist::new();
        for i in 1..=100_000u64 {
            h.record_us(i);
        }
        let p50 = h.p50().as_micros() as f64;
        let p99 = h.p99().as_micros() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.05, "p50={p50}");
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.05, "p99={p99}");
        let mean = h.mean().as_micros() as f64;
        assert!((mean - 50_000.0).abs() / 50_000.0 < 0.01, "mean={mean}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        let mut c = LatencyHist::new();
        for i in 0..1000u64 {
            let v = i * 37 % 5000 + 1;
            if i % 2 == 0 {
                a.record_us(v);
            } else {
                b.record_us(v);
            }
            c.record_us(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.p50(), c.p50());
        assert_eq!(a.p99(), c.p99());
        assert_eq!(a.mean(), c.mean());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn min_max_tracked_exactly() {
        let mut h = LatencyHist::new();
        h.record_us(3);
        h.record_us(900_000);
        h.record_us(42);
        assert_eq!(h.min(), Duration::from_micros(3));
        assert_eq!(h.max(), Duration::from_micros(900_000));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        LatencyHist::new().quantile(1.5);
    }

    #[test]
    fn huge_values_saturate_without_panic() {
        let mut h = LatencyHist::new();
        h.record(Duration::from_secs(10_000));
        assert!(h.p99() >= Duration::from_secs(60));
    }
}
