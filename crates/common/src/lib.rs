//! Common types and utilities shared by every `afcstore` crate.
//!
//! This crate deliberately has no knowledge of storage semantics; it provides
//! the plumbing the rest of the workspace is built from:
//!
//! - [`error`]: the workspace-wide error type.
//! - [`faults`]: deterministic fault-injection schedules and the runtime
//!   registry components consult at their injection sites.
//! - [`ids`]: strongly-typed identifiers (OSDs, PGs, objects, clients, epochs).
//! - [`hist`]: a log-bucketed latency histogram (HdrHistogram-style, no deps).
//! - [`series`]: wall-clock time-series recording for fluctuation plots.
//! - [`counters`]: cheap named atomic counters used for instrumentation.
//! - [`metrics`]: the unified, label-aware cluster metric registry
//!   (counters, gauges, latency histograms, Prometheus export).
//! - [`rng`]: seeded RNG construction and a fast 64-bit mixing hash.
//! - [`timeutil`]: sleeping helpers and stopwatches used by device models.
//! - [`table`]: fixed-width table rendering for benchmark harness output.
//! - [`bytesize`]: byte-size constants and formatting.
//! - [`blocktarget`]: the [`blocktarget::BlockTarget`] trait that workload
//!   generators drive and storage clients implement.
//! - [`lockdep`]: runtime lock-order checking and the declared lock
//!   hierarchy for the OSD hot path (debug builds only).

pub mod blocktarget;
pub mod bytesize;
pub mod counters;
pub mod error;
pub mod faults;
pub mod hist;
pub mod ids;
pub mod lockdep;
pub mod metrics;
pub mod rng;
pub mod series;
pub mod table;
pub mod timeutil;

pub use blocktarget::BlockTarget;
pub use bytesize::{GIB, KIB, MIB, TIB};
pub use counters::CounterSet;
pub use error::{AfcError, Result};
pub use faults::{FaultKind, FaultPlan, FaultRegistry, FaultSpec};
pub use hist::LatencyHist;
pub use ids::{ClientId, Epoch, NodeId, ObjectId, OpId, OsdId, PgId, PoolId, VolumeId};
pub use metrics::{
    Gauge, Histogram, HistogramSet, MetricId, MetricValue, Metrics, MetricsSnapshot,
};

pub use lockdep::{
    TrackedCondvar, TrackedMutex, TrackedMutexGuard, TrackedRwLock, TrackedRwLockReadGuard,
    TrackedRwLockWriteGuard,
};
pub use series::{IopsSampler, TimeSeries};
pub use table::Table;
pub use timeutil::{sleep_for, Stopwatch};
