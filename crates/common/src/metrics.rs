//! Unified, label-aware metric registry for the whole cluster.
//!
//! Every subsystem (devices, journal, filestore, kvstore, messenger,
//! logging, the OSD op path) registers its counters, gauges and latency
//! histograms into one [`Metrics`] registry under dotted site names that
//! follow the same convention as [`crate::faults`] injection sites
//! (`osd3.data.writes`, `node0.journal.commits`, `net.bytes`, ...).
//!
//! The hot path is lock-free: a metric handle ([`Counter`], [`Gauge`],
//! [`Histogram`]) is a cheap `Arc` around atomics, fetched once at
//! construction time; updating it is one relaxed atomic op (same cost model
//! as the `faults` armed-flag fast path). The registry itself is only
//! touched at registration and snapshot time.
//!
//! Snapshots are a stable, sorted tree ([`MetricsSnapshot`]) that can be
//! diffed, queried by name, or rendered to the Prometheus text exposition
//! format ([`MetricsSnapshot::to_prometheus`]) and parsed back
//! ([`MetricsSnapshot::from_prometheus`]) without loss.
//!
//! ```
//! use afc_common::metrics::Metrics;
//! use std::time::Duration;
//!
//! let m = Metrics::new();
//! let writes = m.counter("osd0.data.writes");
//! let lat = m.histogram("osd0.stage.journal");
//! writes.add(3);
//! lat.observe(Duration::from_micros(250));
//!
//! let snap = m.snapshot();
//! assert_eq!(snap.counter("osd0.data.writes"), Some(3));
//! let h = snap.histogram("osd0.stage.journal").unwrap();
//! assert_eq!(h.count, 1);
//! ```

pub use crate::counters::Counter;
use crate::counters::CounterSet;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Buckets per octave (16 sub-buckets bounds relative error at ~6%).
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the linear range: 1 µs · 2^26 ≈ 67 s.
const OCTAVES: usize = 26;
const NBUCKETS: usize = SUB * (OCTAVES + 1);

/// A signed gauge for instantaneous values (queue depths, bytes in flight).
///
/// Cheap to clone; all clones share the cell. Updates are one relaxed
/// atomic op.
///
/// ```
/// use afc_common::metrics::Gauge;
/// let g = Gauge::new();
/// g.add(5);
/// g.sub(2);
/// assert_eq!(g.get(), 3);
/// g.set(-1);
/// assert_eq!(g.get(), -1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Create a detached gauge at zero (register it with
    /// [`Metrics::register_gauge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A thread-safe latency histogram with geometric buckets (µs resolution).
///
/// Unlike [`crate::hist::LatencyHist`] (which is single-owner and merged at
/// the end of a run), this histogram is shared: recording is one relaxed
/// `fetch_add` on the owning bucket plus one on the running µs sum, so it
/// can sit on the write path. The sample count is derived from the buckets,
/// which keeps snapshots internally consistent even while writers are
/// racing the snapshot.
///
/// ```
/// use afc_common::metrics::Histogram;
/// use std::time::Duration;
///
/// let h = Histogram::new();
/// for us in [100u64, 200, 400, 800] {
///     h.observe_us(us);
/// }
/// h.observe(Duration::from_millis(5));
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert!(snap.quantile_us(0.5) >= 200 && snap.quantile_us(0.5) <= 450);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistCells>);

#[derive(Debug)]
struct HistCells {
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create a detached, empty histogram (register it with
    /// [`Metrics::register_histogram`]).
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NBUCKETS);
        buckets.resize_with(NBUCKETS, AtomicU64::default);
        Histogram(Arc::new(HistCells {
            buckets,
            sum_us: AtomicU64::new(0),
        }))
    }

    #[inline]
    fn bucket_of(us: u64) -> usize {
        if us < SUB as u64 {
            return us as usize;
        }
        // v >= SUB: normalize so (v >> shift) lands in [SUB, 2*SUB).
        let msb = 63 - us.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((us >> shift) as usize) - SUB;
        let idx = SUB + shift as usize * SUB + sub;
        idx.min(NBUCKETS - 1)
    }

    /// Inclusive upper bound (µs) of bucket `idx`; the final bucket is
    /// unbounded and reported as `u64::MAX` (`+Inf` in Prometheus terms).
    fn bucket_le(idx: usize) -> u64 {
        if idx >= NBUCKETS - 1 {
            return u64::MAX;
        }
        if idx < SUB {
            return idx as u64;
        }
        let shift = ((idx - SUB) / SUB) as u32;
        let sub = ((idx - SUB) % SUB) as u64;
        let low = (SUB as u64 + sub) << shift;
        low + (1u64 << shift) - 1
    }

    /// Record one latency sample.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record a latency expressed in microseconds.
    #[inline]
    pub fn observe_us(&self, us: u64) {
        self.0.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.0.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded samples (sum over buckets).
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    fn load_raw(&self) -> (Vec<u64>, u64) {
        let buckets = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        (buckets, self.0.sum_us.load(Ordering::Relaxed))
    }

    /// Point-in-time snapshot of this histogram alone.
    pub fn snapshot(&self) -> HistSnapshot {
        let (raw, sum_us) = self.load_raw();
        HistSnapshot::from_raw(&raw, sum_us)
    }
}

/// A live, dynamically growing set of named [`Histogram`]s — the histogram
/// analogue of [`CounterSet`]. Subsystems that discover their label space
/// at runtime (per-volume QoS latency, where volumes appear with the first
/// tagged op) create histograms on demand with [`HistogramSet::hist`];
/// attaching the set once via [`Metrics::attach_hist_set`] makes every
/// present *and future* member visible in snapshots.
///
/// ```
/// use afc_common::metrics::{HistogramSet, Metrics};
/// let set = HistogramSet::new();
/// let m = Metrics::new();
/// m.attach_hist_set("osd0.qos", &set);
/// set.hist("vol1.queue_wait").observe_us(250); // created after attach
/// assert!(m.snapshot().histogram("osd0.qos.vol1.queue_wait").is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct HistogramSet {
    inner: Arc<RwLock<BTreeMap<String, Histogram>>>,
}

impl HistogramSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the histogram named `name`. Callers cache the
    /// returned handle; the set is not meant to be hit per sample.
    pub fn hist(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.read().get(name) {
            return h.clone();
        }
        self.inner
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The current members as `(name, handle)` pairs (sorted by name).
    pub fn entries(&self) -> Vec<(String, Histogram)> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// A metric's identity: a dotted site name plus optional key/value labels.
///
/// Site names follow the fault-injection convention: subsystem instances
/// are path components (`osd2.fs.txns_applied`, `node0.journal.commits`).
/// Labels are for orthogonal dimensions (e.g. an operation kind) and are
/// kept sorted so identity is stable.
///
/// ```
/// use afc_common::metrics::MetricId;
/// let id = MetricId::new("osd0.op.writes").with_label("kind", "4k");
/// assert_eq!(id.name(), "osd0.op.writes");
/// assert_eq!(id.labels(), &[("kind".to_string(), "4k".to_string())]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    /// Identity with no labels.
    pub fn new(name: impl Into<String>) -> Self {
        MetricId {
            name: name.into(),
            labels: Vec::new(),
        }
    }

    /// Add one label, keeping the label list sorted by key.
    pub fn with_label(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.labels.push((k.into(), v.into()));
        self.labels.sort();
        self
    }

    /// The dotted site name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }
}

impl From<&str> for MetricId {
    fn from(s: &str) -> Self {
        MetricId::new(s)
    }
}

impl From<String> for MetricId {
    fn from(s: String) -> Self {
        MetricId::new(s)
    }
}

enum Source {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The cluster-wide metric registry.
///
/// Components register shared handles at construction time; the registry
/// is never touched on the hot path. Multiple registrations under the same
/// [`MetricId`] are **summed/merged at snapshot time** — this is how the
/// two SSD members of an OSD's RAID-0 data target appear as one
/// `osdN.data.*` series, mirroring how they share one fault site.
///
/// ```
/// use afc_common::metrics::{Counter, Metrics};
///
/// let m = Metrics::new();
/// // Two members share the site name; the snapshot sums them.
/// let a = m.counter("osd0.data.writes");
/// let b = Counter::new();
/// m.register_counter("osd0.data.writes", &b);
/// a.add(2);
/// b.add(3);
/// assert_eq!(m.snapshot().counter("osd0.data.writes"), Some(5));
/// ```
#[derive(Default)]
pub struct Metrics {
    sources: RwLock<BTreeMap<MetricId, Vec<Source>>>,
    sets: RwLock<Vec<(String, CounterSet)>>,
    hist_sets: RwLock<Vec<(String, HistogramSet)>>,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create and register a new counter cell under `id`.
    pub fn counter(&self, id: impl Into<MetricId>) -> Counter {
        let c = Counter::new();
        self.register_counter(id, &c);
        c
    }

    /// Register an existing counter cell under `id` (the cell keeps
    /// working wherever it already lives; snapshots will read it).
    pub fn register_counter(&self, id: impl Into<MetricId>, c: &Counter) {
        self.sources
            .write()
            .entry(id.into())
            .or_default()
            .push(Source::Counter(c.clone()));
    }

    /// Create and register a new gauge cell under `id`.
    pub fn gauge(&self, id: impl Into<MetricId>) -> Gauge {
        let g = Gauge::new();
        self.register_gauge(id, &g);
        g
    }

    /// Register an existing gauge cell under `id`.
    pub fn register_gauge(&self, id: impl Into<MetricId>, g: &Gauge) {
        self.sources
            .write()
            .entry(id.into())
            .or_default()
            .push(Source::Gauge(g.clone()));
    }

    /// Create and register a new histogram cell under `id`.
    pub fn histogram(&self, id: impl Into<MetricId>) -> Histogram {
        let h = Histogram::new();
        self.register_histogram(id, &h);
        h
    }

    /// Register an existing histogram cell under `id`.
    pub fn register_histogram(&self, id: impl Into<MetricId>, h: &Histogram) {
        self.sources
            .write()
            .entry(id.into())
            .or_default()
            .push(Source::Histogram(h.clone()));
    }

    /// Attach a live [`CounterSet`] (messenger `net.*`, logging `log.*`):
    /// every counter in the set appears in snapshots as
    /// `<prefix>.<counter-name>` (or bare `<counter-name>` when `prefix`
    /// is empty).
    ///
    /// ```
    /// use afc_common::{metrics::Metrics, CounterSet};
    /// let set = CounterSet::new();
    /// set.counter("log.dropped").add(4);
    /// let m = Metrics::new();
    /// m.attach_set("osd1", &set);
    /// assert_eq!(m.snapshot().counter("osd1.log.dropped"), Some(4));
    /// ```
    pub fn attach_set(&self, prefix: &str, set: &CounterSet) {
        self.sets.write().push((prefix.to_string(), set.clone()));
    }

    /// Attach a live [`HistogramSet`]: every histogram in the set —
    /// including ones created after the attach — appears in snapshots as
    /// `<prefix>.<name>` (or bare `<name>` when `prefix` is empty).
    pub fn attach_hist_set(&self, prefix: &str, set: &HistogramSet) {
        self.hist_sets
            .write()
            .push((prefix.to_string(), set.clone()));
    }

    /// Point-in-time snapshot of every registered metric, as a stable
    /// sorted tree. Duplicate registrations are summed (counters, gauges)
    /// or merged (histograms).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out: BTreeMap<MetricId, MetricValue> = BTreeMap::new();
        for (id, sources) in self.sources.read().iter() {
            let mut counter_sum: Option<u64> = None;
            let mut gauge_sum: Option<i64> = None;
            let mut hist_raw: Option<(Vec<u64>, u64)> = None;
            for s in sources {
                match s {
                    Source::Counter(c) => {
                        counter_sum = Some(counter_sum.unwrap_or(0) + c.get());
                    }
                    Source::Gauge(g) => {
                        gauge_sum = Some(gauge_sum.unwrap_or(0) + g.get());
                    }
                    Source::Histogram(h) => {
                        let (raw, sum_us) = h.load_raw();
                        match &mut hist_raw {
                            None => hist_raw = Some((raw, sum_us)),
                            Some((acc, acc_sum)) => {
                                for (a, b) in acc.iter_mut().zip(&raw) {
                                    *a += *b;
                                }
                                *acc_sum += sum_us;
                            }
                        }
                    }
                }
            }
            // A single id should hold a single kind; if kinds were mixed,
            // histograms win, then counters — deterministic either way.
            let value = if let Some((raw, sum_us)) = hist_raw {
                MetricValue::Histogram(HistSnapshot::from_raw(&raw, sum_us))
            } else if let Some(v) = counter_sum {
                MetricValue::Counter(v)
            } else if let Some(v) = gauge_sum {
                MetricValue::Gauge(v)
            } else {
                continue;
            };
            out.insert(id.clone(), value);
        }
        for (prefix, set) in self.sets.read().iter() {
            for (name, v) in set.snapshot() {
                let full = if prefix.is_empty() {
                    name
                } else {
                    format!("{prefix}.{name}")
                };
                // On a name collision with a non-counter registration the
                // typed registration wins.
                if let MetricValue::Counter(c) = out
                    .entry(MetricId::new(full))
                    .or_insert(MetricValue::Counter(0))
                {
                    *c += v;
                }
            }
        }
        for (prefix, set) in self.hist_sets.read().iter() {
            for (name, h) in set.entries() {
                let full = if prefix.is_empty() {
                    name
                } else {
                    format!("{prefix}.{name}")
                };
                let (raw, sum_us) = h.load_raw();
                let snap = HistSnapshot::from_raw(&raw, sum_us);
                match out.entry(MetricId::new(full)) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(MetricValue::Histogram(snap));
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        // Merge with a same-named histogram registration;
                        // on a kind collision the typed registration wins.
                        if let MetricValue::Histogram(acc) = e.get_mut() {
                            acc.merge(&snap);
                        }
                    }
                }
            }
        }
        MetricsSnapshot { metrics: out }
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("registered", &self.sources.read().len())
            .field("sets", &self.sets.read().len())
            .field("hist_sets", &self.hist_sets.read().len())
            .finish()
    }
}

/// One metric's value inside a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Instantaneous signed value.
    Gauge(i64),
    /// Latency distribution.
    Histogram(HistSnapshot),
}

/// Frozen histogram state: sparse cumulative buckets plus totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// `(le_us, cumulative_count)` for every non-empty bucket, ascending;
    /// `le_us == u64::MAX` is the unbounded (`+Inf`) bucket.
    pub buckets: Vec<(u64, u64)>,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded values, µs.
    pub sum_us: u64,
}

impl HistSnapshot {
    fn from_raw(raw: &[u64], sum_us: u64) -> HistSnapshot {
        let mut buckets = Vec::new();
        let mut cum = 0u64;
        for (idx, &c) in raw.iter().enumerate() {
            if c > 0 {
                cum += c;
                buckets.push((Histogram::bucket_le(idx), cum));
            }
        }
        HistSnapshot {
            buckets,
            count: cum,
            sum_us,
        }
    }

    /// Value (µs) at quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the first bucket containing the ranked sample. Returns 0 when
    /// empty.
    ///
    /// ```
    /// use afc_common::metrics::Histogram;
    /// let h = Histogram::new();
    /// for _ in 0..99 { h.observe_us(100); }
    /// h.observe_us(10_000);
    /// let s = h.snapshot();
    /// assert!(s.quantile_us(0.5) < 120);
    /// assert!(s.quantile_us(0.999) >= 10_000);
    /// ```
    pub fn quantile_us(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        for &(le, cum) in &self.buckets {
            if cum >= rank {
                return le;
            }
        }
        self.buckets.last().map(|&(le, _)| le).unwrap_or(0)
    }

    /// Median, µs.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 95th percentile, µs.
    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    /// 99th percentile, µs.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Arithmetic mean, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Fold `other` into `self`, bucket by bucket.
    ///
    /// All histograms share one fixed bucket layout, so snapshots from
    /// different sources (e.g. the same stage on every OSD) merge exactly:
    /// counts add per bucket and quantiles of the merged snapshot reflect
    /// the combined population.
    ///
    /// ```
    /// use afc_common::metrics::Histogram;
    /// let (a, b) = (Histogram::new(), Histogram::new());
    /// a.observe_us(100);
    /// b.observe_us(100_000);
    /// let mut merged = a.snapshot();
    /// merged.merge(&b.snapshot());
    /// assert_eq!(merged.count, 2);
    /// assert!(merged.quantile_us(1.0) >= 100_000);
    /// ```
    pub fn merge(&mut self, other: &HistSnapshot) {
        let decum = |b: &[(u64, u64)]| {
            let mut prev = 0;
            b.iter()
                .map(|&(le, cum)| {
                    let c = cum - prev;
                    prev = cum;
                    (le, c)
                })
                .collect::<Vec<_>>()
        };
        let mut per: BTreeMap<u64, u64> = BTreeMap::new();
        for (le, c) in decum(&self.buckets)
            .into_iter()
            .chain(decum(&other.buckets))
        {
            *per.entry(le).or_insert(0) += c;
        }
        let mut cum = 0;
        self.buckets = per
            .into_iter()
            .map(|(le, c)| {
                cum += c;
                (le, cum)
            })
            .collect();
        self.count = cum;
        self.sum_us += other.sum_us;
    }
}

/// A stable, sorted point-in-time view of every metric in a registry.
///
/// Obtained from [`Metrics::snapshot`]; query it by name, iterate it, or
/// render/parse the Prometheus text format.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<MetricId, MetricValue>,
}

impl MetricsSnapshot {
    /// Look up the value registered under the unlabeled `name`.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(&MetricId::new(name))
    }

    /// Look up a metric by full identity (name + labels).
    pub fn get_id(&self, id: &MetricId) -> Option<&MetricValue> {
        self.metrics.get(id)
    }

    /// Counter value under `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value under `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram under `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterate all `(identity, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricId, &MetricValue)> {
        self.metrics.iter()
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Dotted site names are not valid Prometheus metric names, so each
    /// series gets a sanitized name (dots → underscores) and carries the
    /// exact site name in a `site` label; [`Self::from_prometheus`]
    /// rebuilds the original identities from that label, making the
    /// encoding lossless. Histogram `le` bounds and sums are microseconds.
    ///
    /// ```
    /// use afc_common::metrics::Metrics;
    /// let m = Metrics::new();
    /// m.counter("net.bytes").add(7);
    /// let text = m.snapshot().to_prometheus();
    /// assert!(text.contains("net_bytes{site=\"net.bytes\"} 7"));
    /// ```
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (id, v) in &self.metrics {
            let san = sanitize(id.name());
            let labels = render_labels(id);
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {san} counter");
                    let _ = writeln!(out, "{san}{{{labels}}} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {san} gauge");
                    let _ = writeln!(out, "{san}{{{labels}}} {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {san} histogram");
                    for &(le, cum) in &h.buckets {
                        let le_s = if le == u64::MAX {
                            "+Inf".to_string()
                        } else {
                            le.to_string()
                        };
                        let _ = writeln!(out, "{san}_bucket{{{labels},le=\"{le_s}\"}} {cum}");
                    }
                    if h.buckets.last().map(|&(le, _)| le) != Some(u64::MAX) {
                        let _ = writeln!(out, "{san}_bucket{{{labels},le=\"+Inf\"}} {}", h.count);
                    }
                    let _ = writeln!(out, "{san}_sum{{{labels}}} {}", h.sum_us);
                    let _ = writeln!(out, "{san}_count{{{labels}}} {}", h.count);
                }
            }
        }
        out
    }

    /// Parse text produced by [`Self::to_prometheus`] back into a
    /// snapshot. Series identity comes from the `site` label, so the
    /// round trip is exact: `from_prometheus(s.to_prometheus()) == s`.
    pub fn from_prometheus(text: &str) -> crate::Result<MetricsSnapshot> {
        use crate::AfcError;
        // Buckets, sum and count of a histogram under (re)construction.
        type PartialHist = (Vec<(u64, u64)>, u64, u64);
        let mut kinds: BTreeMap<String, String> = BTreeMap::new();
        let mut hists: BTreeMap<MetricId, PartialHist> = BTreeMap::new();
        let mut metrics: BTreeMap<MetricId, MetricValue> = BTreeMap::new();
        let bad = |line: &str| AfcError::InvalidArgument(format!("bad prometheus line: {line}"));

        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                    kinds.insert(name.to_string(), kind.to_string());
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let brace = line.find('{').ok_or_else(|| bad(line))?;
            let close = line.rfind('}').ok_or_else(|| bad(line))?;
            let series = &line[..brace];
            let label_str = &line[brace + 1..close];
            let value_str = line[close + 1..].trim();
            let mut site = None;
            let mut le = None;
            let mut labels = Vec::new();
            for part in split_labels(label_str) {
                let (k, v) = part.ok_or_else(|| bad(line))?;
                match k.as_str() {
                    "site" => site = Some(v),
                    "le" => le = Some(v),
                    _ => labels.push((k, v)),
                }
            }
            let site = site.ok_or_else(|| bad(line))?;
            labels.sort();
            let mut id = MetricId::new(site);
            id.labels = labels;

            // Histogram series carry a suffix on the sanitized name.
            let kind_of = |series: &str, suffix: &str| {
                series
                    .strip_suffix(suffix)
                    .map(|base| kinds.get(base).map(|k| k == "histogram").unwrap_or(false))
                    .unwrap_or(false)
            };
            if kind_of(series, "_bucket") {
                let le = le.ok_or_else(|| bad(line))?;
                let le_us = if le == "+Inf" {
                    u64::MAX
                } else {
                    le.parse().map_err(|_| bad(line))?
                };
                let cum: u64 = value_str.parse().map_err(|_| bad(line))?;
                hists.entry(id).or_default().0.push((le_us, cum));
            } else if kind_of(series, "_sum") {
                let v: u64 = value_str.parse().map_err(|_| bad(line))?;
                hists.entry(id).or_default().1 = v;
            } else if kind_of(series, "_count") {
                let v: u64 = value_str.parse().map_err(|_| bad(line))?;
                hists.entry(id).or_default().2 = v;
            } else {
                let kind = kinds.get(series).map(String::as_str).unwrap_or("counter");
                let value = match kind {
                    "gauge" => MetricValue::Gauge(value_str.parse().map_err(|_| bad(line))?),
                    _ => MetricValue::Counter(value_str.parse().map_err(|_| bad(line))?),
                };
                metrics.insert(id, value);
            }
        }
        for (id, (mut buckets, sum_us, count)) in hists {
            buckets.sort();
            // Drop a synthetic +Inf bucket that merely repeats the count.
            if let Some(&(le, cum)) = buckets.last() {
                if le == u64::MAX {
                    // Real overflow buckets strictly increase the running
                    // count; a repeat (or lone zero) is synthetic.
                    let prev = buckets
                        .len()
                        .checked_sub(2)
                        .map(|i| buckets[i].1)
                        .unwrap_or(0);
                    if prev == cum {
                        buckets.pop();
                    }
                }
            }
            metrics.insert(
                id,
                MetricValue::Histogram(HistSnapshot {
                    buckets,
                    count,
                    sum_us,
                }),
            );
        }
        Ok(MetricsSnapshot { metrics })
    }
}

/// Sanitize a dotted site name into a Prometheus-legal metric name.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

fn render_labels(id: &MetricId) -> String {
    let mut out = format!("site=\"{}\"", escape_label(id.name()));
    for (k, v) in id.labels() {
        let _ = write!(out, ",{}=\"{}\"", sanitize(k), escape_label(v));
    }
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Split `k="v",k2="v2"` into pairs, honouring escaped quotes.
fn split_labels(s: &str) -> impl Iterator<Item = Option<(String, String)>> + '_ {
    let mut rest = s;
    std::iter::from_fn(move || {
        rest = rest.trim_start_matches(',').trim();
        if rest.is_empty() {
            return None;
        }
        let eq = match rest.find('=') {
            Some(i) => i,
            None => {
                rest = "";
                return Some(None);
            }
        };
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            rest = "";
            return Some(None);
        }
        let body = &after[1..];
        let mut val = String::new();
        let mut chars = body.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, n)) = chars.next() {
                        val.push(n);
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                c => val.push(c),
            }
        }
        match end {
            Some(i) => {
                rest = &body[i + 1..];
                Some(Some((key, val)))
            }
            None => {
                rest = "";
                Some(None)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip_values() {
        let m = Metrics::new();
        let c = m.counter("a.b.c");
        let g = m.gauge("a.b.depth");
        c.add(41);
        c.inc();
        g.add(10);
        g.sub(3);
        let s = m.snapshot();
        assert_eq!(s.counter("a.b.c"), Some(42));
        assert_eq!(s.gauge("a.b.depth"), Some(7));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("a.b.c"), None);
    }

    #[test]
    fn duplicate_registrations_sum() {
        let m = Metrics::new();
        let a = m.counter("osd0.data.writes");
        let b = Counter::new();
        m.register_counter("osd0.data.writes", &b);
        a.add(2);
        b.add(5);
        assert_eq!(m.snapshot().counter("osd0.data.writes"), Some(7));

        let h1 = m.histogram("osd0.stage.journal");
        let h2 = Histogram::new();
        m.register_histogram("osd0.stage.journal", &h2);
        h1.observe_us(100);
        h2.observe_us(100);
        h2.observe_us(1000);
        let s = m.snapshot();
        assert_eq!(s.histogram("osd0.stage.journal").unwrap().count, 3);
    }

    #[test]
    fn labels_distinguish_series() {
        let m = Metrics::new();
        let a = m.counter(MetricId::new("ops").with_label("kind", "read"));
        let b = m.counter(MetricId::new("ops").with_label("kind", "write"));
        a.add(1);
        b.add(2);
        let s = m.snapshot();
        assert_eq!(
            s.get_id(&MetricId::new("ops").with_label("kind", "read")),
            Some(&MetricValue::Counter(1))
        );
        assert_eq!(
            s.get_id(&MetricId::new("ops").with_label("kind", "write")),
            Some(&MetricValue::Counter(2))
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn attached_sets_appear_with_prefix() {
        let m = Metrics::new();
        let set = CounterSet::new();
        set.counter("net.bytes").add(11);
        m.attach_set("", &set);
        let set2 = CounterSet::new();
        set2.counter("log.dropped").add(3);
        m.attach_set("osd1", &set2);
        let s = m.snapshot();
        assert_eq!(s.counter("net.bytes"), Some(11));
        assert_eq!(s.counter("osd1.log.dropped"), Some(3));
    }

    #[test]
    fn attached_hist_sets_appear_with_prefix() {
        let m = Metrics::new();
        let set = HistogramSet::new();
        m.attach_hist_set("osd0.qos", &set);
        // Members created *after* the attach are still visible — the whole
        // point of the live set.
        set.hist("vol1.queue_wait").observe_us(100);
        set.hist("vol1.queue_wait").observe_us(300);
        set.hist("vol2.queue_wait").observe_us(50);
        let s = m.snapshot();
        let h1 = s.histogram("osd0.qos.vol1.queue_wait").expect("vol1 hist");
        assert_eq!(h1.count, 2);
        let h2 = s.histogram("osd0.qos.vol2.queue_wait").expect("vol2 hist");
        assert_eq!(h2.count, 1);
        // hist() returns the same underlying cell each call.
        assert_eq!(set.hist("vol1.queue_wait").count(), 2);
        assert_eq!(set.entries().len(), 2);
    }

    #[test]
    fn hist_set_merges_with_typed_registration() {
        let m = Metrics::new();
        let typed = m.histogram("qos.lat");
        typed.observe_us(10);
        let set = HistogramSet::new();
        set.hist("lat").observe_us(20);
        m.attach_hist_set("qos", &set);
        let s = m.snapshot();
        assert_eq!(s.histogram("qos.lat").expect("merged").count, 2);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Exact values below SUB get exact buckets.
        for us in 0..SUB as u64 {
            let h = Histogram::new();
            h.observe_us(us);
            let s = h.snapshot();
            assert_eq!(s.buckets, vec![(us, 1)], "us={us}");
            assert_eq!(s.quantile_us(1.0), us);
        }
        // Power-of-two boundaries: value falls in a bucket whose le bound
        // is >= the value and within the ~6% relative-error budget.
        for us in [16u64, 17, 31, 32, 1 << 10, (1 << 20) + 123, 1 << 25] {
            let h = Histogram::new();
            h.observe_us(us);
            let le = h.snapshot().quantile_us(1.0);
            assert!(le >= us, "us={us} le={le}");
            assert!((le - us) as f64 / us as f64 <= 0.07, "us={us} le={le}");
        }
        // Saturation: beyond the covered range lands in the +Inf bucket.
        let h = Histogram::new();
        h.observe_us(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![(u64::MAX, 1)]);
        assert_eq!(s.quantile_us(0.5), u64::MAX);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn histogram_quantiles_track_distribution() {
        let h = Histogram::new();
        for i in 1..=10_000u64 {
            h.observe_us(i);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        let p50 = s.p50_us() as f64;
        let p99 = s.p99_us() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.08, "p50={p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99={p99}");
        assert!((s.mean_us() as f64 - 5_000.0).abs() / 5_000.0 < 0.01);
    }

    #[test]
    fn prometheus_roundtrip_is_lossless() {
        let m = Metrics::new();
        m.counter("osd0.data.writes").add(12);
        m.counter(MetricId::new("osd0.op.client_ops").with_label("kind", "4k\"quoted\""))
            .add(9);
        let g = m.gauge("node0.journal.depth");
        g.set(-4);
        let h = m.histogram("osd0.stage.journal");
        for us in [3u64, 90, 90, 1500, 700_000] {
            h.observe_us(us);
        }
        // An empty histogram must also survive the trip.
        m.histogram("osd0.stage.ack");
        let snap = m.snapshot();
        let text = snap.to_prometheus();
        let back = MetricsSnapshot::from_prometheus(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_rejects_garbage() {
        assert!(MetricsSnapshot::from_prometheus("what is this").is_err());
        assert!(MetricsSnapshot::from_prometheus("x{le=\"3\"} 1").is_err());
        // Valid empty input parses to an empty snapshot.
        let s = MetricsSnapshot::from_prometheus("# just a comment\n").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn snapshot_while_writing_is_consistent() {
        use std::sync::atomic::AtomicBool;
        let m = Arc::new(Metrics::new());
        let h = m.histogram("x.lat");
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    h.observe_us(i % 10_000);
                    i += 1;
                }
                i - 1
            })
        };
        for _ in 0..50 {
            let s = m.snapshot();
            if let Some(hs) = s.histogram("x.lat") {
                // Cumulative counts are monotone and end at `count`.
                let mut prev = 0;
                for &(_, cum) in &hs.buckets {
                    assert!(cum >= prev);
                    prev = cum;
                }
                assert_eq!(hs.count, prev);
            }
        }
        stop.store(true, Ordering::Relaxed);
        let written = writer.join().unwrap();
        assert_eq!(m.snapshot().histogram("x.lat").unwrap().count, written);
    }

    #[test]
    fn histogram_merge_matches_combined_population() {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for i in 0..500u64 {
            a.observe_us(i * 7 % 3000);
            combined.observe_us(i * 7 % 3000);
        }
        for i in 0..300u64 {
            b.observe_us(10_000 + i * 13 % 5000);
            combined.observe_us(10_000 + i * 13 % 5000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, combined.snapshot());
        // Merging an empty snapshot is the identity.
        let before = m.clone();
        m.merge(&Histogram::new().snapshot());
        assert_eq!(m, before);
    }
}
