//! The filestore: Ceph's object store backend, rebuilt.
//!
//! A Ceph OSD persists objects through the *filestore*: object data lives in
//! files on a local filesystem, object metadata in xattrs, and omap/PG-log
//! data in an LSM key-value DB. A write arrives as a **transaction**
//! ([`txn::Transaction`]) bundling `OP_WRITE`, `OP_SETATTRS`,
//! `OP_OMAP_SETKEYS`, `OP_SETALLOCHINT`... (§3.4, Figure 7).
//!
//! This crate reproduces the two execution modes the paper compares:
//!
//! - **Community** ([`TxnProfile::Community`]): every op re-opens its file
//!   (syscalls), `set-alloc-hint` is issued even for random small writes,
//!   every omap key is a separate synchronous KV commit, and object
//!   metadata is **read back from storage during the write path**
//!   (read-modify-write) — which on flash interferes with in-flight writes.
//! - **Light-weight transactions** ([`TxnProfile::Lightweight`]): one open
//!   per transaction (FD cache), redundant ops deduplicated, all KV keys in
//!   one [`afc_kvstore::WriteBatch`], `set-alloc-hint` skipped for small
//!   writes, and a **write-through metadata cache** eliminates the
//!   metadata reads entirely.
//!
//! Apply concurrency is provided by a small worker pool fed through the
//! **filestore throttle** (`filestore_queue_max_ops`) — the HDD-sized
//! default is the source of the Figure 4 backlog; the paper retunes it for
//! SSDs (§3.2).

pub mod metacache;
pub mod simfs;
pub mod store;
pub mod throttle;
pub mod txn;

pub use metacache::{MetaCache, ObjectMeta};
pub use simfs::SimFs;
pub use store::{FileStore, FileStoreConfig, FileStoreStats, TxnProfile};
pub use throttle::Throttle;
pub use txn::{Transaction, TxOp};
