//! The write-through object metadata cache (§3.4).
//!
//! "We avoid reading metadata from storage by maximizing the use of cache
//! (write through) because most of the metadata exist in memory. Write
//! through cache has an advantage that can avoid inconsistent state because
//! data is written directly to storage."
//!
//! Entries are small (the paper: "most of the object metadata are under
//! 270 bytes"), so a bounded map with FIFO eviction is faithful to the
//! memory analysis in §3.4 (≈2.5 GB for 10 TB at 4 MB objects).

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};

/// Cached per-object metadata (what the baseline re-reads from storage on
/// every write).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObjectMeta {
    /// Object size in bytes.
    pub size: u64,
    /// Mutation count (version).
    pub version: u64,
    /// Whether an allocation hint was recorded.
    pub alloc_hint: bool,
}

struct Inner {
    map: HashMap<String, ObjectMeta>,
    order: VecDeque<String>,
}

/// Bounded write-through metadata cache.
pub struct MetaCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: afc_common::metrics::Counter,
    misses: afc_common::metrics::Counter,
}

impl MetaCache {
    /// Create a cache holding up to `capacity` objects' metadata.
    pub fn new(capacity: usize) -> Self {
        MetaCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            hits: Default::default(),
            misses: Default::default(),
        }
    }

    /// Look up an object's metadata.
    pub fn get(&self, object: &str) -> Option<ObjectMeta> {
        let inner = self.inner.lock();
        match inner.map.get(object) {
            Some(m) => {
                self.hits.inc();
                Some(m.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert/update (write-through: the caller has already persisted it).
    pub fn put(&self, object: &str, meta: ObjectMeta) {
        let mut inner = self.inner.lock();
        if inner.map.insert(object.to_string(), meta).is_none() {
            inner.order.push_back(object.to_string());
            while inner.map.len() > self.capacity {
                if let Some(victim) = inner.order.pop_front() {
                    inner.map.remove(&victim);
                }
            }
        }
    }

    /// Drop an object's entry (object removed).
    pub fn invalidate(&self, object: &str) {
        let mut inner = self.inner.lock();
        inner.map.remove(object);
        inner.order.retain(|o| o != object);
    }

    /// Drop every entry (simulated crash: the cache is volatile state).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Register hit/miss counters under `<prefix>.cache_hits` /
    /// `<prefix>.cache_misses`.
    pub fn register_into(&self, m: &afc_common::metrics::Metrics, prefix: &str) {
        m.register_counter(format!("{prefix}.cache_hits"), &self.hits);
        m.register_counter(format!("{prefix}.cache_misses"), &self.misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_stats() {
        let c = MetaCache::new(10);
        assert!(c.get("a").is_none());
        c.put(
            "a",
            ObjectMeta {
                size: 42,
                version: 1,
                alloc_hint: false,
            },
        );
        assert_eq!(c.get("a").unwrap().size, 42);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn update_in_place_keeps_len() {
        let c = MetaCache::new(10);
        c.put("a", ObjectMeta::default());
        c.put(
            "a",
            ObjectMeta {
                size: 1,
                version: 2,
                alloc_hint: true,
            },
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a").unwrap().version, 2);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let c = MetaCache::new(3);
        for i in 0..5 {
            c.put(
                &format!("o{i}"),
                ObjectMeta {
                    size: i,
                    ..Default::default()
                },
            );
        }
        assert_eq!(c.len(), 3);
        assert!(c.get("o0").is_none());
        assert!(c.get("o1").is_none());
        assert!(c.get("o4").is_some());
    }

    #[test]
    fn invalidate_removes() {
        let c = MetaCache::new(4);
        c.put("x", ObjectMeta::default());
        c.invalidate("x");
        assert!(c.is_empty());
        assert!(c.get("x").is_none());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = std::sync::Arc::new(MetaCache::new(100));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500 {
                        let key = format!("o{}", (t * 13 + i) % 50);
                        c.put(
                            &key,
                            ObjectMeta {
                                size: i,
                                ..Default::default()
                            },
                        );
                        let _ = c.get(&key);
                    }
                });
            }
        });
        assert!(c.len() <= 100);
    }
}
