//! Operation throttles (`filestore_queue_max_ops`,
//! `osd_client_message_cap`, ...).
//!
//! §3.2: "Most of the distributed filesystems have throttle logic in order
//! to support balanced performance or QoS... These parameters are set based
//! on HDD capacity", so on flash the defaults strangle the pipeline. A
//! [`Throttle`] is a counting semaphore that records how often and how long
//! acquirers block, so harnesses can show exactly where HDD-sized limits
//! bite.

use afc_common::lockdep::{self, classes, TrackedCondvar, TrackedMutex};
use afc_common::metrics::{Counter, Metrics};
use afc_common::{AfcError, Result};
#[cfg(test)]
use std::time::Duration;
use std::time::Instant;

struct State {
    in_use: u64,
    max: u64,
    closed: bool,
}

/// A counting semaphore with wait accounting and a runtime-adjustable limit.
pub struct Throttle {
    name: &'static str,
    state: TrackedMutex<State>,
    cv: TrackedCondvar,
    waits: Counter,
    wait_us: Counter,
}

/// RAII permit; releases on drop.
pub struct Permit<'a> {
    throttle: &'a Throttle,
    count: u64,
}

/// RAII permit that owns its throttle, movable across threads (completion
/// callbacks hold it until the transaction finishes applying).
pub struct OwnedPermit {
    throttle: std::sync::Arc<Throttle>,
    count: u64,
}

impl Drop for OwnedPermit {
    fn drop(&mut self) {
        self.throttle.release(self.count);
    }
}

impl Throttle {
    /// Create a throttle admitting `max` concurrent units.
    pub fn new(name: &'static str, max: u64) -> Self {
        assert!(max > 0, "throttle limit must be positive");
        Throttle {
            name,
            state: TrackedMutex::new(
                &classes::THROTTLE,
                State {
                    in_use: 0,
                    max,
                    closed: false,
                },
            ),
            cv: TrackedCondvar::new(),
            waits: Default::default(),
            wait_us: Default::default(),
        }
    }

    /// Acquire `count` units, blocking while over the limit.
    pub fn acquire(&self, count: u64) -> Result<Permit<'_>> {
        // May park until another holder releases; callers must not hold
        // any no-block lock class across this.
        lockdep::assert_blockable("throttle acquire");
        let mut st = self.state.lock();
        if count > st.max {
            return Err(AfcError::InvalidArgument(format!(
                "throttle {}: request {count} exceeds limit {}",
                self.name, st.max
            )));
        }
        let mut waited: Option<Instant> = None;
        while st.in_use + count > st.max {
            if st.closed {
                return Err(AfcError::ShutDown(format!("throttle {}", self.name)));
            }
            if waited.is_none() {
                waited = Some(Instant::now());
                self.waits.inc();
            }
            self.cv.wait(&mut st);
        }
        if st.closed {
            return Err(AfcError::ShutDown(format!("throttle {}", self.name)));
        }
        if let Some(t0) = waited {
            self.wait_us.add(t0.elapsed().as_micros() as u64);
        }
        st.in_use += count;
        Ok(Permit {
            throttle: self,
            count,
        })
    }

    /// Acquire `count` units as an owned, thread-movable permit.
    pub fn acquire_owned(self: &std::sync::Arc<Self>, count: u64) -> Result<OwnedPermit> {
        let permit = self.acquire(count)?;
        std::mem::forget(permit); // ownership transfers to the OwnedPermit
        Ok(OwnedPermit {
            throttle: std::sync::Arc::clone(self),
            count,
        })
    }

    /// Try to acquire without blocking.
    pub fn try_acquire(&self, count: u64) -> Option<Permit<'_>> {
        let mut st = self.state.lock();
        if st.closed || st.in_use + count > st.max {
            return None;
        }
        st.in_use += count;
        Some(Permit {
            throttle: self,
            count,
        })
    }

    fn release(&self, count: u64) {
        let mut st = self.state.lock();
        st.in_use = st.in_use.saturating_sub(count);
        drop(st);
        self.cv.notify_all();
    }

    /// Change the limit at runtime (system tuning), waking waiters.
    pub fn set_max(&self, max: u64) {
        assert!(max > 0, "throttle limit must be positive");
        self.state.lock().max = max;
        self.cv.notify_all();
    }

    /// Close: all current and future acquirers fail with `ShutDown`.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }

    /// Units currently held.
    pub fn in_use(&self) -> u64 {
        self.state.lock().in_use
    }

    /// Current limit.
    pub fn max(&self) -> u64 {
        self.state.lock().max
    }

    /// `(block events, total blocked µs)`.
    pub fn wait_stats(&self) -> (u64, u64) {
        (self.waits.get(), self.wait_us.get())
    }

    /// Register the wait accounting under `<prefix>.waits` /
    /// `<prefix>.wait_us`.
    pub fn register_into(&self, m: &Metrics, prefix: &str) {
        m.register_counter(format!("{prefix}.waits"), &self.waits);
        m.register_counter(format!("{prefix}.wait_us"), &self.wait_us);
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.throttle.release(self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_cycle() {
        let t = Throttle::new("test", 2);
        let a = t.acquire(1).unwrap();
        let b = t.acquire(1).unwrap();
        assert_eq!(t.in_use(), 2);
        assert!(t.try_acquire(1).is_none());
        drop(a);
        assert_eq!(t.in_use(), 1);
        assert!(t.try_acquire(1).is_some());
        drop(b);
    }

    #[test]
    fn blocking_acquire_waits_and_accounts() {
        let t = Arc::new(Throttle::new("test", 1));
        let held = t.acquire(1).unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            let _p = t2.acquire(1).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        h.join().unwrap();
        let (waits, wait_us) = t.wait_stats();
        assert_eq!(waits, 1);
        assert!(wait_us >= 15_000, "wait_us={wait_us}");
    }

    #[test]
    fn set_max_unblocks_waiters() {
        let t = Arc::new(Throttle::new("test", 1));
        let _held = t.acquire(1).unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || t2.acquire(1).map(drop));
        std::thread::sleep(Duration::from_millis(10));
        t.set_max(2);
        h.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_request_rejected() {
        let t = Throttle::new("test", 4);
        assert!(t.acquire(5).is_err());
        assert!(t.acquire(4).is_ok());
    }

    #[test]
    fn close_fails_waiters_and_future() {
        let t = Arc::new(Throttle::new("test", 1));
        let held = t.acquire(1).unwrap();
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || t2.acquire(1).map(|_| ()));
        std::thread::sleep(Duration::from_millis(10));
        t.close();
        assert!(h.join().unwrap().is_err());
        drop(held);
        assert!(t.acquire(1).is_err());
        assert!(t.try_acquire(1).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_rejected() {
        Throttle::new("bad", 0);
    }
}
