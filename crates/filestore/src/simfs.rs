//! The simulated local filesystem under the filestore.
//!
//! Stores real bytes (so end-to-end data integrity is testable through the
//! whole stack) while accounting **syscalls** — the paper removed redundant
//! `open`/`stat`/`write`/`setxattr` calls per transaction (§3.4: "various
//! types of system calls such as (open, write, stat) are repeated to the
//! same file") — and charging data-plane device I/O to the backing
//! [`BlockDev`].
//!
//! Each syscall costs a small fixed CPU time (kernel crossing), modeled by
//! a short deterministic delay; data reads/writes additionally charge the
//! device. Per-type syscall counters let benchmark harnesses print the
//! syscall-reduction table.

use afc_common::{AfcError, CounterSet, Result};
use afc_device::{BlockDev, IoKind, IoReq, StreamId};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Per-object heat threshold: an object rewritten this many times is
/// classed hot and its data writes move to the [`StreamId::DataHot`]
/// stream, keeping frequently-invalidated pages out of cold erase blocks.
const HOT_WRITE_THRESHOLD: u64 = 4;

/// Extent granule for object data placement. Objects get stable device
/// extents in these units, so rewriting an object page hits the *same*
/// device offset and invalidates its predecessor in the device's FTL —
/// an append-cursor charge model would make every write look
/// freshly-allocated and erase the hot/cold lifetime structure the
/// multi-stream FTL exists to exploit. 64 KiB matches the RAID-0 stripe
/// unit, so one extent lands wholly on one member SSD.
const EXTENT: u64 = 64 * 1024;

/// Map a logical byte range onto the node's extents: one `(device
/// offset, len)` span per touched [`EXTENT`] chunk. Callers must have
/// extended `extents` to cover the range first.
fn extent_spans(extents: &[u64], offset: u64, len: u64) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    let mut pos = offset;
    let end = offset + len;
    while pos < end {
        let intra = pos % EXTENT;
        let n = (EXTENT - intra).min(end - pos);
        out.push((extents[(pos / EXTENT) as usize] + intra, n as u32));
        pos += n;
    }
    out
}

/// Cost of one kernel crossing. Real syscalls are ~0.3–1 µs; on this
/// simulator's coarse sleep clock we fold syscall cost into counters only
/// and charge no time below `SYSCALL_BATCH` — the *device* I/O dominates,
/// as it does on the paper's testbed. The counters still expose the
/// redundancy the LWT removes.
const SYSCALL_COST: Duration = Duration::ZERO;

struct FileNode {
    data: Vec<u8>,
    xattrs: HashMap<String, Bytes>,
    alloc_hint: bool,
    /// Lightweight heat tracker: data writes observed on this object.
    writes: u64,
    /// Device base offset of each [`EXTENT`]-sized data chunk.
    extents: Vec<u64>,
    /// Stable inode/xattr block on the device (metadata writes overwrite
    /// in place, like a real filesystem journals the same inode).
    meta_block: u64,
}

/// The simulated filesystem: named files + xattrs over a device.
pub struct SimFs {
    dev: Arc<dyn BlockDev>,
    files: RwLock<HashMap<String, Arc<Mutex<FileNode>>>>,
    counters: CounterSet,
    /// Bump allocator for extents and inode blocks (wraps at capacity).
    cursor: std::sync::atomic::AtomicU64,
}

impl SimFs {
    /// Create a filesystem over `dev`.
    pub fn new(dev: Arc<dyn BlockDev>) -> Self {
        SimFs {
            dev,
            files: RwLock::new(HashMap::new()),
            counters: CounterSet::new(),
            cursor: Default::default(),
        }
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<dyn BlockDev> {
        &self.dev
    }

    /// Per-type syscall counters (`sys.open`, `sys.write`, `sys.read`,
    /// `sys.stat`, `sys.setxattr`, `sys.getxattr`, `sys.fallocate`,
    /// `sys.unlink`, `sys.ftruncate`).
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    fn syscall(&self, name: &str) {
        self.counters.counter(name).inc();
        if SYSCALL_COST > Duration::ZERO {
            afc_common::sleep_for(SYSCALL_COST);
        }
    }

    fn node(&self, path: &str) -> Result<Arc<Mutex<FileNode>>> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| AfcError::NotFound(format!("file {path}")))
    }

    /// `open(O_CREAT)`: ensure the file exists. Counted per call — the
    /// community transaction path re-opens per op; the LWT opens once.
    pub fn open_create(&self, path: &str) -> Result<()> {
        self.syscall("sys.open");
        let mut files = self.files.write();
        files.entry(path.to_string()).or_insert_with(|| {
            Arc::new(Mutex::new(FileNode {
                data: Vec::new(),
                xattrs: HashMap::new(),
                alloc_hint: false,
                writes: 0,
                extents: Vec::new(),
                meta_block: self.alloc(4096),
            }))
        });
        Ok(())
    }

    /// `stat`: file size, or `NotFound`.
    pub fn stat(&self, path: &str) -> Result<u64> {
        self.syscall("sys.stat");
        Ok(self.node(path)?.lock().data.len() as u64)
    }

    /// Whether the file exists (no syscall charge; directory-cache check).
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// `pwrite`: store bytes and charge the device write, tagged hot or
    /// cold by the object's write count (per-object heat tracker).
    pub fn write(&self, path: &str, offset: u64, data: &[u8]) -> Result<()> {
        self.syscall("sys.write");
        if data.is_empty() {
            return Err(AfcError::InvalidArgument("zero-length write".into()));
        }
        let node = self.node(path)?;
        let (stream, spans) = {
            let mut n = node.lock();
            let end = offset as usize + data.len();
            if n.data.len() < end {
                n.data.resize(end, 0);
            }
            n.data[offset as usize..end].copy_from_slice(data);
            n.writes += 1;
            let stream = if n.writes >= HOT_WRITE_THRESHOLD {
                StreamId::DataHot
            } else {
                StreamId::DataCold
            };
            self.ensure_extents(&mut n, offset + data.len() as u64);
            (stream, extent_spans(&n.extents, offset, data.len() as u64))
        };
        for (off, len) in spans {
            self.charge_at(IoKind::Write, off, len, stream)?;
        }
        Ok(())
    }

    /// `pread`: fetch bytes and charge the device read. Reads past EOF
    /// return the available prefix (zero-filled holes included).
    pub fn read(&self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.syscall("sys.read");
        let node = self.node(path)?;
        let (out, spans) = {
            let mut n = node.lock();
            let start = (offset as usize).min(n.data.len());
            let end = (offset as usize + len).min(n.data.len());
            let out = n.data[start..end].to_vec();
            self.ensure_extents(&mut n, offset + len as u64);
            (out, extent_spans(&n.extents, offset, len as u64))
        };
        for (off, l) in spans {
            self.charge_at(IoKind::Read, off, l, StreamId::DataCold)?;
        }
        Ok(out)
    }

    /// `ftruncate`.
    pub fn truncate(&self, path: &str, size: u64) -> Result<()> {
        self.syscall("sys.ftruncate");
        let node = self.node(path)?;
        node.lock().data.resize(size as usize, 0);
        Ok(())
    }

    /// `setxattr` (one syscall per attribute, as the community path does).
    /// Charges a small device write: xattr updates dirty the inode and hit
    /// the filesystem journal — real metadata write traffic on the flash.
    pub fn setxattr(&self, path: &str, name: &str, value: Bytes) -> Result<()> {
        self.syscall("sys.setxattr");
        let node = self.node(path)?;
        let off = {
            let mut n = node.lock();
            n.xattrs.insert(name.to_string(), value);
            n.meta_block
        };
        self.charge_at(IoKind::Write, off, 4096, StreamId::Meta)
    }

    /// `getxattr`: charges a small device read (inode/xattr block fetch) —
    /// the §3.4 metadata-read traffic (~15 MB/s per disk during writes).
    pub fn getxattr(&self, path: &str, name: &str) -> Result<Option<Bytes>> {
        self.syscall("sys.getxattr");
        let node = self.node(path)?;
        let (v, off) = {
            let n = node.lock();
            (n.xattrs.get(name).cloned(), n.meta_block)
        };
        self.charge_at(IoKind::Read, off, 4096, StreamId::Meta)?;
        Ok(v)
    }

    /// `fallocate(FALLOC_FL_KEEP_SIZE)` — the `set-alloc-hint` the LWT
    /// skips for small random writes. Charges a small metadata write.
    pub fn fallocate_hint(&self, path: &str) -> Result<()> {
        self.syscall("sys.fallocate");
        let node = self.node(path)?;
        let off = {
            let mut n = node.lock();
            n.alloc_hint = true;
            n.meta_block
        };
        self.charge_at(IoKind::Write, off, 4096, StreamId::Meta)
    }

    /// `unlink`.
    pub fn unlink(&self, path: &str) -> Result<()> {
        self.syscall("sys.unlink");
        self.files
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| AfcError::NotFound(format!("file {path}")))
    }

    /// All file paths (directory listing; used by recovery/scrub).
    pub fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Whether the alloc hint was recorded (test hook).
    pub fn alloc_hint(&self, path: &str) -> Result<bool> {
        Ok(self.node(path)?.lock().alloc_hint)
    }

    /// Bump-allocate `len` bytes of device address space (extents, inode
    /// blocks). Wraps at capacity; allocation granularity keeps alignment.
    fn alloc(&self, len: u64) -> u64 {
        use std::sync::atomic::Ordering::Relaxed;
        let cap = self.dev.capacity().max(len);
        self.cursor.fetch_add(len, Relaxed) % cap.saturating_sub(len).max(1)
    }

    /// Grow the node's extent list to cover logical bytes `[0, end)`.
    fn ensure_extents(&self, n: &mut FileNode, end: u64) {
        let need = end.div_ceil(EXTENT) as usize;
        while n.extents.len() < need {
            n.extents.push(self.alloc(EXTENT));
        }
    }

    /// Submit one device I/O at a stable offset.
    fn charge_at(&self, kind: IoKind, offset: u64, len: u32, stream: StreamId) -> Result<()> {
        self.dev.submit(IoReq {
            kind,
            offset,
            len,
            stream,
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_device::{Nvram, NvramConfig};

    fn fs() -> SimFs {
        SimFs::new(Arc::new(Nvram::new(NvramConfig::pmc_8g())))
    }

    #[test]
    fn write_read_roundtrip_with_holes() {
        let fs = fs();
        fs.open_create("obj1").unwrap();
        fs.write("obj1", 100, b"hello").unwrap();
        assert_eq!(fs.read("obj1", 100, 5).unwrap(), b"hello");
        assert_eq!(fs.read("obj1", 0, 4).unwrap(), vec![0u8; 4]);
        // Read past EOF returns prefix.
        assert_eq!(fs.read("obj1", 103, 10).unwrap(), b"lo");
        assert_eq!(fs.stat("obj1").unwrap(), 105);
    }

    #[test]
    fn missing_file_errors() {
        let fs = fs();
        assert!(fs.read("nope", 0, 1).is_err());
        assert!(fs.write("nope", 0, b"x").is_err());
        assert!(fs.stat("nope").is_err());
        assert!(fs.unlink("nope").is_err());
        assert!(!fs.exists("nope"));
    }

    #[test]
    fn xattrs_roundtrip() {
        let fs = fs();
        fs.open_create("o").unwrap();
        fs.setxattr("o", "_", Bytes::from_static(b"meta")).unwrap();
        assert_eq!(fs.getxattr("o", "_").unwrap().unwrap().as_ref(), b"meta");
        assert!(fs.getxattr("o", "missing").unwrap().is_none());
    }

    #[test]
    fn syscalls_counted_per_type() {
        let fs = fs();
        fs.open_create("o").unwrap();
        fs.open_create("o").unwrap(); // re-open counts again
        fs.write("o", 0, b"abc").unwrap();
        fs.stat("o").unwrap();
        fs.setxattr("o", "a", Bytes::new()).unwrap();
        fs.fallocate_hint("o").unwrap();
        let c = fs.counters();
        assert_eq!(c.get("sys.open"), 2);
        assert_eq!(c.get("sys.write"), 1);
        assert_eq!(c.get("sys.stat"), 1);
        assert_eq!(c.get("sys.setxattr"), 1);
        assert_eq!(c.get("sys.fallocate"), 1);
        assert!(fs.alloc_hint("o").unwrap());
    }

    #[test]
    fn device_charged_for_data_and_xattr_reads() {
        let fs = fs();
        fs.open_create("o").unwrap();
        fs.write("o", 0, &vec![1u8; 8192]).unwrap();
        fs.read("o", 0, 4096).unwrap();
        fs.getxattr("o", "x").unwrap();
        fs.setxattr("o", "x", Bytes::new()).unwrap();
        let s = fs.device().stats();
        assert_eq!(s.bytes_written, 8192 + 4096); // data + xattr/inode write
        assert_eq!(s.bytes_read, 4096 + 4096);
    }

    #[test]
    fn heat_tracker_promotes_rewritten_objects() {
        let fs = fs();
        fs.open_create("hot").unwrap();
        // First writes are cold; from the threshold on, writes tag hot.
        for _ in 0..HOT_WRITE_THRESHOLD + 2 {
            fs.write("hot", 0, &[7u8; 4096]).unwrap();
        }
        let s = fs.device().stats();
        let hot = s.stream_bytes[StreamId::DataHot.index()];
        let cold = s.stream_bytes[StreamId::DataCold.index()];
        assert_eq!(cold, (HOT_WRITE_THRESHOLD - 1) * 4096);
        assert_eq!(hot, 3 * 4096);
        // Metadata writes go to the meta stream, not data streams.
        fs.setxattr("hot", "_", Bytes::new()).unwrap();
        let s = fs.device().stats();
        assert_eq!(s.stream_bytes[StreamId::Meta.index()], 4096);
        assert_eq!(s.stream_bytes.iter().sum::<u64>(), s.bytes_written);
    }

    #[test]
    fn truncate_and_unlink() {
        let fs = fs();
        fs.open_create("o").unwrap();
        fs.write("o", 0, &[1, 2, 3, 4]).unwrap();
        fs.truncate("o", 2).unwrap();
        assert_eq!(fs.stat("o").unwrap(), 2);
        fs.unlink("o").unwrap();
        assert!(!fs.exists("o"));
    }

    #[test]
    fn list_is_sorted() {
        let fs = fs();
        for n in ["b", "a", "c"] {
            fs.open_create(n).unwrap();
        }
        assert_eq!(fs.list(), vec!["a", "b", "c"]);
    }

    #[test]
    fn concurrent_writers_to_distinct_files() {
        let fs = Arc::new(fs());
        std::thread::scope(|s| {
            for t in 0..4 {
                let fs = Arc::clone(&fs);
                s.spawn(move || {
                    let path = format!("f{t}");
                    fs.open_create(&path).unwrap();
                    for i in 0..50u64 {
                        fs.write(&path, i * 8, &i.to_le_bytes()).unwrap();
                    }
                });
            }
        });
        for t in 0..4 {
            assert_eq!(fs.stat(&format!("f{t}")).unwrap(), 400);
        }
    }
}
