//! Filestore transactions (Figure 7).
//!
//! A write request reaches the filestore as a transaction bundling the data
//! write with its metadata: `OP_WRITE` (file data), `OP_SETATTRS` (object
//! metadata as xattrs), `OP_OMAP_SETKEYS` (omap + PG log into the KV DB),
//! and — in the community path — `OP_SETALLOCHINT`. The light-weight
//! transaction **deduplicates** redundant ops before queuing
//! ([`Transaction::dedup`]).

use afc_common::{AfcError, Result};
use bytes::Bytes;

/// One operation within a transaction.
#[derive(Debug, Clone)]
pub enum TxOp {
    /// Ensure the object's backing file exists.
    Touch {
        /// Object name.
        object: String,
    },
    /// Write data into the object.
    Write {
        /// Object name.
        object: String,
        /// Byte offset.
        offset: u64,
        /// Payload.
        data: Bytes,
    },
    /// Truncate the object.
    Truncate {
        /// Object name.
        object: String,
        /// New size.
        size: u64,
    },
    /// Remove the object.
    Remove {
        /// Object name.
        object: String,
    },
    /// Set object xattrs (one syscall each in the community path).
    SetAttrs {
        /// Object name.
        object: String,
        /// Attribute name/value pairs.
        attrs: Vec<(String, Bytes)>,
    },
    /// Insert omap keys (PG log, object omap) into the KV DB.
    OmapSetKeys {
        /// Owning object (namespace prefix in the KV DB).
        object: String,
        /// Key/value pairs.
        keys: Vec<(Bytes, Bytes)>,
    },
    /// Remove omap keys.
    OmapRmKeys {
        /// Owning object.
        object: String,
        /// Keys to delete.
        keys: Vec<Bytes>,
    },
    /// `set-alloc-hint` (`fallocate`): beneficial for sequential streams,
    /// useless for random small writes — the LWT drops it there (§3.4).
    SetAllocHint {
        /// Object name.
        object: String,
    },
}

impl TxOp {
    /// The object this op addresses.
    pub fn object(&self) -> &str {
        match self {
            TxOp::Touch { object }
            | TxOp::Write { object, .. }
            | TxOp::Truncate { object, .. }
            | TxOp::Remove { object }
            | TxOp::SetAttrs { object, .. }
            | TxOp::OmapSetKeys { object, .. }
            | TxOp::OmapRmKeys { object, .. }
            | TxOp::SetAllocHint { object } => object,
        }
    }
}

/// An atomic group of filestore operations.
#[derive(Debug, Clone, Default)]
pub struct Transaction {
    ops: Vec<TxOp>,
}

impl Transaction {
    /// Create an empty transaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an op (builder style).
    pub fn push(&mut self, op: TxOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The ops in order.
    pub fn ops(&self) -> &[TxOp] {
        &self.ops
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the transaction is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Serialized size on the journal (header + op payloads).
    pub fn encoded_bytes(&self) -> u64 {
        let mut n = 32u64;
        for op in &self.ops {
            n += 16 + op.object().len() as u64;
            n += match op {
                TxOp::Write { data, .. } => data.len() as u64 + 16,
                TxOp::SetAttrs { attrs, .. } => attrs
                    .iter()
                    .map(|(k, v)| k.len() as u64 + v.len() as u64 + 8)
                    .sum::<u64>(),
                TxOp::OmapSetKeys { keys, .. } => keys
                    .iter()
                    .map(|(k, v)| k.len() as u64 + v.len() as u64 + 8)
                    .sum::<u64>(),
                TxOp::OmapRmKeys { keys, .. } => {
                    keys.iter().map(|k| k.len() as u64 + 8).sum::<u64>()
                }
                TxOp::Truncate { .. } => 8,
                TxOp::Touch { .. } | TxOp::Remove { .. } | TxOp::SetAllocHint { .. } => 0,
            };
        }
        n
    }

    /// Bytes of object data written by this transaction.
    pub fn data_bytes(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TxOp::Write { data, .. } => data.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Serialize for journaling. The wire format is self-delimiting
    /// (tag + length-prefixed fields) so [`Transaction::decode`] can
    /// reconstruct the exact op list during crash replay.
    pub fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(self.encoded_bytes() as usize);
        put_u32(&mut buf, self.ops.len() as u32);
        for op in &self.ops {
            match op {
                TxOp::Touch { object } => {
                    buf.extend_from_slice(&[0]);
                    put_str(&mut buf, object);
                }
                TxOp::Write {
                    object,
                    offset,
                    data,
                } => {
                    buf.extend_from_slice(&[1]);
                    put_str(&mut buf, object);
                    buf.extend_from_slice(&offset.to_le_bytes());
                    put_bytes(&mut buf, data);
                }
                TxOp::Truncate { object, size } => {
                    buf.extend_from_slice(&[2]);
                    put_str(&mut buf, object);
                    buf.extend_from_slice(&size.to_le_bytes());
                }
                TxOp::Remove { object } => {
                    buf.extend_from_slice(&[3]);
                    put_str(&mut buf, object);
                }
                TxOp::SetAttrs { object, attrs } => {
                    buf.extend_from_slice(&[4]);
                    put_str(&mut buf, object);
                    put_u32(&mut buf, attrs.len() as u32);
                    for (k, v) in attrs {
                        put_str(&mut buf, k);
                        put_bytes(&mut buf, v);
                    }
                }
                TxOp::OmapSetKeys { object, keys } => {
                    buf.extend_from_slice(&[5]);
                    put_str(&mut buf, object);
                    put_u32(&mut buf, keys.len() as u32);
                    for (k, v) in keys {
                        put_bytes(&mut buf, k);
                        put_bytes(&mut buf, v);
                    }
                }
                TxOp::OmapRmKeys { object, keys } => {
                    buf.extend_from_slice(&[6]);
                    put_str(&mut buf, object);
                    put_u32(&mut buf, keys.len() as u32);
                    for k in keys {
                        put_bytes(&mut buf, k);
                    }
                }
                TxOp::SetAllocHint { object } => {
                    buf.extend_from_slice(&[7]);
                    put_str(&mut buf, object);
                }
            }
        }
        Bytes::from(buf)
    }

    /// Decode a serialized transaction (journal replay). Fails with
    /// [`AfcError::Corruption`] on any structural damage.
    pub fn decode(buf: &[u8]) -> Result<Transaction> {
        let mut cur = Cursor {
            buf,
            shared: None,
            pos: 0,
        };
        Self::decode_from(&mut cur)
    }

    /// Decode from a refcounted buffer, slicing each `Bytes` field (write
    /// payloads, omap keys/values, attr values) out of `buf` instead of
    /// copying it — the zero-copy replay path: a decoded write shares its
    /// data with the journal entry that carried it.
    pub fn decode_shared(buf: &Bytes) -> Result<Transaction> {
        let mut cur = Cursor {
            buf,
            shared: Some(buf),
            pos: 0,
        };
        Self::decode_from(&mut cur)
    }

    fn decode_from(cur: &mut Cursor) -> Result<Transaction> {
        let buf = cur.buf;
        let n = cur.u32()? as usize;
        let mut ops = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let tag = cur.u8()?;
            let object = cur.string()?;
            let op = match tag {
                0 => TxOp::Touch { object },
                1 => TxOp::Write {
                    object,
                    offset: cur.u64()?,
                    data: cur.bytes()?,
                },
                2 => TxOp::Truncate {
                    object,
                    size: cur.u64()?,
                },
                3 => TxOp::Remove { object },
                4 => {
                    let n = cur.u32()? as usize;
                    let mut attrs = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        attrs.push((cur.string()?, cur.bytes()?));
                    }
                    TxOp::SetAttrs { object, attrs }
                }
                5 => {
                    let n = cur.u32()? as usize;
                    let mut keys = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        keys.push((cur.bytes()?, cur.bytes()?));
                    }
                    TxOp::OmapSetKeys { object, keys }
                }
                6 => {
                    let n = cur.u32()? as usize;
                    let mut keys = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        keys.push(cur.bytes()?);
                    }
                    TxOp::OmapRmKeys { object, keys }
                }
                7 => TxOp::SetAllocHint { object },
                t => {
                    return Err(AfcError::Corruption(format!("unknown txn op tag {t}")));
                }
            };
            ops.push(op);
        }
        if cur.pos != buf.len() {
            return Err(AfcError::Corruption(format!(
                "trailing garbage in txn encoding: {} of {} bytes consumed",
                cur.pos,
                buf.len()
            )));
        }
        Ok(Transaction { ops })
    }

    /// The light-weight transaction's op minimization (§3.4: "The redundancy
    /// is removed and operations in this transaction is minimized"):
    /// duplicate `Touch`/`SetAllocHint` per object collapse to one, repeated
    /// `SetAttrs` on the same object merge (last value wins per attr), and
    /// consecutive `OmapSetKeys` on the same object concatenate so they
    /// reach the KV DB as one batch insert.
    #[must_use]
    pub fn dedup(self) -> Transaction {
        let mut out: Vec<TxOp> = Vec::with_capacity(self.ops.len());
        let mut touched: Vec<String> = Vec::new();
        let mut hinted: Vec<String> = Vec::new();
        for op in self.ops {
            match op {
                TxOp::Touch { object } => {
                    if !touched.contains(&object) {
                        touched.push(object.clone());
                        out.push(TxOp::Touch { object });
                    }
                }
                TxOp::SetAllocHint { object } => {
                    if !hinted.contains(&object) {
                        hinted.push(object.clone());
                        out.push(TxOp::SetAllocHint { object });
                    }
                }
                TxOp::SetAttrs { object, attrs } => {
                    if let Some(TxOp::SetAttrs {
                        object: prev_obj,
                        attrs: prev,
                    }) = out
                        .iter_mut()
                        .rev()
                        .find(|o| matches!(o, TxOp::SetAttrs { object: po, .. } if *po == object))
                    {
                        debug_assert_eq!(*prev_obj, object);
                        for (k, v) in attrs {
                            if let Some(e) = prev.iter_mut().find(|(pk, _)| *pk == k) {
                                e.1 = v;
                            } else {
                                prev.push((k, v));
                            }
                        }
                    } else {
                        out.push(TxOp::SetAttrs { object, attrs });
                    }
                }
                TxOp::OmapSetKeys { object, keys } => {
                    if let Some(TxOp::OmapSetKeys {
                        object: po,
                        keys: prev,
                    }) = out.last_mut()
                    {
                        if *po == object {
                            prev.extend(keys);
                            continue;
                        }
                    }
                    out.push(TxOp::OmapSetKeys { object, keys });
                }
                other => out.push(other),
            }
        }
        Transaction { ops: out }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

struct Cursor<'a> {
    buf: &'a [u8],
    /// When decoding from a refcounted buffer, `bytes()` slices it
    /// (O(1), shared ownership) instead of copying.
    shared: Option<&'a Bytes>,
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| AfcError::Corruption("truncated txn encoding".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Result<Bytes> {
        let n = self.u32()? as usize;
        if let Some(shared) = self.shared {
            let start = self.pos;
            self.take(n)?; // bounds check + advance
            return Ok(shared.slice(start..start + n));
        }
        Ok(Bytes::copy_from_slice(self.take(n)?))
    }

    fn string(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| AfcError::Corruption("non-UTF-8 object name in txn".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(obj: &str, n: usize) -> TxOp {
        TxOp::Write {
            object: obj.into(),
            offset: 0,
            data: Bytes::from(vec![0u8; n]),
        }
    }

    #[test]
    fn builder_and_sizes() {
        let mut t = Transaction::new();
        t.push(TxOp::Touch { object: "o".into() });
        t.push(w("o", 4096));
        t.push(TxOp::SetAttrs {
            object: "o".into(),
            attrs: vec![("_".into(), Bytes::from_static(b"m"))],
        });
        t.push(TxOp::OmapSetKeys {
            object: "o".into(),
            keys: vec![(Bytes::from_static(b"k"), Bytes::from_static(b"v"))],
        });
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.data_bytes(), 4096);
        assert!(t.encoded_bytes() > 4096);
    }

    #[test]
    fn dedup_collapses_touch_and_hint() {
        let mut t = Transaction::new();
        for _ in 0..3 {
            t.push(TxOp::Touch { object: "o".into() });
            t.push(TxOp::SetAllocHint { object: "o".into() });
        }
        t.push(TxOp::Touch {
            object: "other".into(),
        });
        let d = t.dedup();
        let touches = d
            .ops()
            .iter()
            .filter(|o| matches!(o, TxOp::Touch { .. }))
            .count();
        let hints = d
            .ops()
            .iter()
            .filter(|o| matches!(o, TxOp::SetAllocHint { .. }))
            .count();
        assert_eq!(touches, 2);
        assert_eq!(hints, 1);
    }

    #[test]
    fn dedup_merges_setattrs_last_wins() {
        let mut t = Transaction::new();
        t.push(TxOp::SetAttrs {
            object: "o".into(),
            attrs: vec![
                ("a".into(), Bytes::from_static(b"1")),
                ("b".into(), Bytes::from_static(b"2")),
            ],
        });
        t.push(TxOp::SetAttrs {
            object: "o".into(),
            attrs: vec![("a".into(), Bytes::from_static(b"9"))],
        });
        let d = t.dedup();
        let attrs: Vec<_> = d
            .ops()
            .iter()
            .filter_map(|o| match o {
                TxOp::SetAttrs { attrs, .. } => Some(attrs.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(attrs.len(), 1);
        let merged = &attrs[0];
        assert_eq!(
            merged.iter().find(|(k, _)| k == "a").unwrap().1.as_ref(),
            b"9"
        );
        assert_eq!(
            merged.iter().find(|(k, _)| k == "b").unwrap().1.as_ref(),
            b"2"
        );
    }

    #[test]
    fn dedup_concatenates_adjacent_omap() {
        let mut t = Transaction::new();
        t.push(TxOp::OmapSetKeys {
            object: "o".into(),
            keys: vec![(Bytes::from_static(b"k1"), Bytes::from_static(b"v1"))],
        });
        t.push(TxOp::OmapSetKeys {
            object: "o".into(),
            keys: vec![(Bytes::from_static(b"k2"), Bytes::from_static(b"v2"))],
        });
        let d = t.dedup();
        assert_eq!(d.len(), 1);
        match &d.ops()[0] {
            TxOp::OmapSetKeys { keys, .. } => assert_eq!(keys.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dedup_preserves_write_order() {
        let mut t = Transaction::new();
        t.push(w("o", 10));
        t.push(w("o", 20));
        let d = t.dedup();
        assert_eq!(d.len(), 2);
        match (&d.ops()[0], &d.ops()[1]) {
            (TxOp::Write { data: a, .. }, TxOp::Write { data: b, .. }) => {
                assert_eq!((a.len(), b.len()), (10, 20));
            }
            _ => panic!("writes reordered"),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut t = Transaction::new();
        t.push(TxOp::Touch { object: "o".into() });
        t.push(TxOp::SetAllocHint { object: "o".into() });
        t.push(TxOp::Write {
            object: "o".into(),
            offset: 512,
            data: Bytes::from(vec![9u8; 1000]),
        });
        t.push(TxOp::Truncate {
            object: "o".into(),
            size: 700,
        });
        t.push(TxOp::SetAttrs {
            object: "o".into(),
            attrs: vec![("snapset".into(), Bytes::from_static(b"{}"))],
        });
        t.push(TxOp::OmapSetKeys {
            object: "pgmeta_3".into(),
            keys: vec![(Bytes::from_static(b"pglog.1"), Bytes::from(vec![1u8; 64]))],
        });
        t.push(TxOp::OmapRmKeys {
            object: "pgmeta_3".into(),
            keys: vec![Bytes::from_static(b"pglog.0")],
        });
        t.push(TxOp::Remove {
            object: "stale".into(),
        });
        let enc = t.encode();
        let d = Transaction::decode(&enc).unwrap();
        assert_eq!(d.len(), t.len());
        assert_eq!(format!("{:?}", d.ops()), format!("{:?}", t.ops()));
    }

    #[test]
    fn decode_shared_is_zero_copy_and_identical() {
        let mut t = Transaction::new();
        t.push(TxOp::Touch { object: "o".into() });
        t.push(TxOp::Write {
            object: "o".into(),
            offset: 64,
            data: Bytes::from(vec![7u8; 4096]),
        });
        t.push(TxOp::OmapSetKeys {
            object: "pgmeta_1".into(),
            keys: vec![(Bytes::from_static(b"k"), Bytes::from_static(b"v"))],
        });
        let enc = t.encode();
        let copied = Transaction::decode(&enc).unwrap();
        let shared = Transaction::decode_shared(&enc).unwrap();
        assert_eq!(format!("{:?}", shared.ops()), format!("{:?}", copied.ops()));
        // The write payload must alias the encoding, not a fresh allocation.
        let data = shared
            .ops()
            .iter()
            .find_map(|o| match o {
                TxOp::Write { data, .. } => Some(data),
                _ => None,
            })
            .unwrap();
        let enc_range = enc.as_ptr() as usize..enc.as_ptr() as usize + enc.len();
        assert!(enc_range.contains(&(data.as_ptr() as usize)));
        // Damage is rejected identically on both paths.
        let torn = enc.slice(..enc.len() - 3);
        assert!(Transaction::decode_shared(&torn).is_err());
    }

    #[test]
    fn decode_rejects_damage() {
        let mut t = Transaction::new();
        t.push(w("obj", 100));
        let enc = t.encode();
        // Truncation, trailing garbage, and a bad tag all fail loudly.
        assert!(Transaction::decode(&enc[..enc.len() - 3]).is_err());
        let mut garbage = enc.to_vec();
        garbage.push(0xff);
        assert!(Transaction::decode(&garbage).is_err());
        let mut bad_tag = enc.to_vec();
        bad_tag[4] = 0x7f;
        assert!(Transaction::decode(&bad_tag).is_err());
        // Empty txn round-trips.
        let e = Transaction::new().encode();
        assert_eq!(Transaction::decode(&e).unwrap().len(), 0);
    }

    #[test]
    fn op_object_accessor() {
        assert_eq!(w("abc", 1).object(), "abc");
        assert_eq!(TxOp::Remove { object: "x".into() }.object(), "x");
    }
}
