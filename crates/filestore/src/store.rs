//! The filestore: transaction application over [`SimFs`] + the KV DB.

use crate::metacache::{MetaCache, ObjectMeta};
use crate::simfs::SimFs;
use crate::throttle::Throttle;
use crate::txn::{Transaction, TxOp};
use afc_common::faults::{FaultKind, FaultRegistry};
use afc_common::lockdep;
use afc_common::metrics::{Counter, Metrics};
use afc_common::{AfcError, Result};
use afc_device::BlockDev;
use afc_kvstore::{Db, DbConfig, WriteBatch, WriteOptions};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// Late-bound fault hookup shared between the store and its apply workers.
/// Workers are spawned in `new()` before any registry can be attached, so
/// the handle is a `OnceLock` they all observe once `attach_faults` runs.
type FaultHandle = Arc<OnceLock<(Arc<FaultRegistry>, String)>>;

/// Transaction execution profile (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnProfile {
    /// Community Ceph: redundant syscalls, per-key KV commits, alloc hints
    /// always issued, metadata read back from storage on every write.
    Community,
    /// Light-weight transactions: deduped ops, FD reuse, batched KV
    /// insertion, hint skipped for small writes, write-through meta cache.
    Lightweight,
}

/// Filestore configuration.
#[derive(Debug, Clone)]
pub struct FileStoreConfig {
    /// Execution profile.
    pub profile: TxnProfile,
    /// `filestore_queue_max_ops`: in-flight transaction cap. The community
    /// default (50) is sized for HDDs; §3.2 retunes it for flash.
    pub queue_max_ops: u64,
    /// Apply worker threads.
    pub apply_threads: usize,
    /// Metadata cache capacity (objects); only consulted in `Lightweight`.
    pub meta_cache_entries: usize,
    /// `set-alloc-hint` is skipped for writes below this size (LWT only).
    pub small_write_threshold: u64,
    /// KV store tuning.
    pub kv: DbConfig,
}

impl FileStoreConfig {
    /// Community defaults (HDD-sized throttle).
    pub fn community() -> Self {
        FileStoreConfig {
            profile: TxnProfile::Community,
            queue_max_ops: 50,
            apply_threads: 2,
            meta_cache_entries: 0,
            small_write_threshold: 64 * 1024,
            kv: DbConfig::default(),
        }
    }

    /// AFCeph defaults: light-weight transactions + SSD-sized throttle.
    pub fn lightweight() -> Self {
        FileStoreConfig {
            profile: TxnProfile::Lightweight,
            queue_max_ops: 5000,
            meta_cache_entries: 65536,
            ..Self::community()
        }
    }
}

/// Completion callback for an applied transaction.
pub type ApplyFn = Box<dyn FnOnce(Result<()>) + Send>;

struct Job {
    txn: Transaction,
    done: ApplyFn,
}

/// Aggregated filestore statistics.
#[derive(Debug, Clone, Default)]
pub struct FileStoreStats {
    /// Transactions applied.
    pub txns_applied: u64,
    /// Object data bytes written.
    pub data_bytes: u64,
    /// Metadata reads performed during the write path (the §3.4 RMW reads).
    pub meta_reads: u64,
    /// Alloc hints skipped by the LWT small-write rule.
    pub hints_skipped: u64,
    /// Throttle block events.
    pub throttle_waits: u64,
    /// Total throttle block time, microseconds.
    pub throttle_wait_us: u64,
    /// Metadata cache hits/misses (LWT).
    pub cache_hits: u64,
    /// Metadata cache misses (LWT).
    pub cache_misses: u64,
    /// Transactions whose application failed (injected or device faults).
    /// These are surfaced to the `done` callback, never swallowed.
    pub apply_errors: u64,
}

/// The object store backend. One per OSD, over that OSD's RAID-0 device
/// (shared with its KV DB, so metadata reads genuinely interfere with data
/// writes on the flash model).
pub struct FileStore {
    cfg: FileStoreConfig,
    fs: Arc<SimFs>,
    kv: Arc<Db>,
    throttle: Arc<Throttle>,
    cache: Arc<MetaCache>,
    /// One queue per apply worker; transactions are sharded by object so
    /// applies to the same object stay ordered (Ceph's per-PG op
    /// sequencer).
    shards: Vec<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    faults: FaultHandle,
    txns_applied: Counter,
    data_bytes: Counter,
    meta_reads: Counter,
    hints_skipped: Counter,
    apply_errors: Counter,
}

/// Everything the apply path needs, shared with worker threads.
struct ApplyCtx {
    cfg: FileStoreConfig,
    fs: Arc<SimFs>,
    kv: Arc<Db>,
    cache: Arc<MetaCache>,
    faults: FaultHandle,
    txns_applied: Counter,
    data_bytes: Counter,
    meta_reads: Counter,
    hints_skipped: Counter,
}

fn meta_key(object: &str) -> Bytes {
    Bytes::from(format!("m/{object}"))
}

fn attr_key(object: &str, name: &str) -> Bytes {
    Bytes::from(format!("x/{object}/{name}"))
}

fn omap_key(object: &str, key: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(object.len() + key.len() + 3);
    v.extend_from_slice(b"o/");
    v.extend_from_slice(object.as_bytes());
    v.push(b'/');
    v.extend_from_slice(key);
    Bytes::from(v)
}

fn encode_meta(m: &ObjectMeta) -> Bytes {
    let mut v = Vec::with_capacity(17);
    v.extend_from_slice(&m.size.to_le_bytes());
    v.extend_from_slice(&m.version.to_le_bytes());
    v.push(m.alloc_hint as u8);
    Bytes::from(v)
}

fn decode_meta(b: &[u8]) -> Option<ObjectMeta> {
    if b.len() < 17 {
        return None;
    }
    Some(ObjectMeta {
        size: u64::from_le_bytes(b[0..8].try_into().ok()?),
        version: u64::from_le_bytes(b[8..16].try_into().ok()?),
        alloc_hint: b[16] != 0,
    })
}

impl FileStore {
    /// Open a filestore over `dev` with `cfg`. The KV DB shares the device.
    pub fn new(dev: Arc<dyn BlockDev>, cfg: FileStoreConfig) -> Result<Arc<Self>> {
        let fs = Arc::new(SimFs::new(Arc::clone(&dev)));
        let kv = Arc::new(Db::open(dev, cfg.kv.clone())?);
        let throttle = Arc::new(Throttle::new("filestore_queue_max_ops", cfg.queue_max_ops));
        let cache = Arc::new(MetaCache::new(cfg.meta_cache_entries.max(1)));
        let faults: FaultHandle = Arc::new(OnceLock::new());
        let txns_applied = Counter::new();
        let data_bytes = Counter::new();
        let meta_reads = Counter::new();
        let hints_skipped = Counter::new();
        let apply_errors = Counter::new();
        let mut workers = Vec::new();
        let mut shards = Vec::new();
        for i in 0..cfg.apply_threads.max(1) {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
            shards.push(tx);
            let ctx = ApplyCtx {
                cfg: cfg.clone(),
                fs: Arc::clone(&fs),
                kv: Arc::clone(&kv),
                cache: Arc::clone(&cache),
                faults: Arc::clone(&faults),
                txns_applied: txns_applied.clone(),
                data_bytes: data_bytes.clone(),
                meta_reads: meta_reads.clone(),
                hints_skipped: hints_skipped.clone(),
            };
            let errs = apply_errors.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fs-apply-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let res = apply_txn(&ctx, job.txn);
                            if res.is_err() {
                                errs.inc();
                            }
                            (job.done)(res);
                        }
                    })
                    .map_err(|e| AfcError::Io(format!("spawn apply worker: {e}")))?,
            );
        }
        Ok(Arc::new(FileStore {
            cfg,
            fs,
            kv,
            throttle,
            cache,
            shards,
            workers,
            faults,
            txns_applied,
            data_bytes,
            meta_reads,
            hints_skipped,
            apply_errors,
        }))
    }

    /// Wire a fault registry into the apply path. `site` is the base name;
    /// the workers consult `{site}.apply` (fail the whole transaction up
    /// front) and `{site}.mid_apply` (fail between ops, leaving a partial
    /// apply behind for recovery to clean up). First attach wins.
    pub fn attach_faults(&self, registry: Arc<FaultRegistry>, site: impl Into<String>) {
        let _ = self.faults.set((registry, site.into()));
    }

    /// Simulate power loss on the backing store: volatile KV state (open
    /// memtables and unsynced WAL records) is discarded and the DB reopens
    /// from its durable image. Object data in [`SimFs`] models the on-disk
    /// files and survives. Journal replay after this restores whatever the
    /// lost KV records described. Returns the number of WAL records the KV
    /// recovery replayed.
    pub fn crash_volatile(&self) -> Result<usize> {
        self.cache.clear();
        self.kv.crash_and_recover()
    }

    /// Queue a transaction for application. Blocks on the filestore
    /// throttle when `queue_max_ops` transactions are in flight — the
    /// §2.4/Figure 4 backpressure point. `done` runs on an apply worker.
    pub fn queue_transaction(&self, txn: Transaction, done: ApplyFn) -> Result<()> {
        // Blocks on the filestore queue throttle when the apply backlog is
        // at `filestore_queue_max_ops` (the §3.2 stall this crate models).
        lockdep::assert_blockable("filestore queue_transaction");
        let permit = self.throttle.acquire_owned(1)?;
        let done: ApplyFn = Box::new(move |r| {
            drop(permit);
            done(r);
        });
        // Shard by the transaction's first object so same-object applies
        // are ordered (one worker = one sequence).
        let shard = match txn.ops().first() {
            Some(op) => {
                afc_common::rng::hash_bytes(op.object().as_bytes()) as usize % self.shards.len()
            }
            None => 0,
        };
        self.shards[shard]
            .send(Job { txn, done })
            .map_err(|_| AfcError::ShutDown("filestore".into()))
    }

    /// Queue and wait for application (tests, recovery replay).
    pub fn apply_sync(&self, txn: Transaction) -> Result<()> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.queue_transaction(
            txn,
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
        )?;
        rx.recv()
            .map_err(|_| AfcError::ShutDown("filestore".into()))?
    }

    /// Read object data (charges the device).
    pub fn read(&self, object: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.fs.read(object, offset, len)
    }

    /// Object metadata via cache → KV → `NotFound`.
    pub fn stat(&self, object: &str) -> Result<ObjectMeta> {
        if self.cfg.profile == TxnProfile::Lightweight {
            if let Some(m) = self.cache.get(object) {
                return Ok(m);
            }
        }
        match self.kv.get(&meta_key(object))? {
            Some(v) => {
                decode_meta(&v).ok_or_else(|| AfcError::Corruption(format!("meta {object}")))
            }
            None => Err(AfcError::NotFound(format!("object {object}"))),
        }
    }

    /// Whether the object exists.
    pub fn exists(&self, object: &str) -> bool {
        self.fs.exists(object)
    }

    /// Read one omap value.
    pub fn omap_get(&self, object: &str, key: &[u8]) -> Result<Option<Bytes>> {
        self.kv.get(&omap_key(object, key))
    }

    /// All omap pairs of an object (key order).
    pub fn omap_scan(&self, object: &str) -> Result<Vec<(Bytes, Bytes)>> {
        let prefix = omap_key(object, b"");
        let items = self.kv.scan_prefix(&prefix)?;
        Ok(items
            .into_iter()
            .map(|(k, v)| (Bytes::copy_from_slice(&k[prefix.len()..]), v))
            .collect())
    }

    /// Read an object xattr (filesystem first, then the KV store where the
    /// light-weight path keeps attrs).
    pub fn getattr(&self, object: &str, name: &str) -> Result<Option<Bytes>> {
        if self.cfg.profile == TxnProfile::Lightweight {
            if let Some(v) = self.kv.get(&attr_key(object, name))? {
                return Ok(Some(v));
            }
            if !self.fs.exists(object) {
                return Err(AfcError::NotFound(format!("object {object}")));
            }
            return Ok(None);
        }
        self.fs.getxattr(object, name)
    }

    /// List every object (recovery/scrub).
    pub fn list_objects(&self) -> Vec<String> {
        self.fs.list()
    }

    /// In-flight (queued + applying) transactions.
    pub fn queue_len(&self) -> u64 {
        self.throttle.in_use()
    }

    /// Block until the apply queue drains (test/bench helper).
    pub fn wait_idle(&self) {
        while self.throttle.in_use() > 0 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    /// Retune the throttle at runtime (§3.2 system tuning).
    pub fn set_queue_max_ops(&self, max: u64) {
        self.throttle.set_max(max);
    }

    /// Filestore `sync_entry`: force buffered KV state durable (WAL sync +
    /// memtable flush). Benchmarks call this before reading WA counters.
    pub fn sync(&self) -> Result<()> {
        self.kv.flush()
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> FileStoreStats {
        let (tw, twu) = self.throttle.wait_stats();
        let (ch, cm) = self.cache.stats();
        FileStoreStats {
            txns_applied: self.txns_applied.get(),
            data_bytes: self.data_bytes.get(),
            meta_reads: self.meta_reads.get(),
            hints_skipped: self.hints_skipped.get(),
            throttle_waits: tw,
            throttle_wait_us: twu,
            cache_hits: ch,
            cache_misses: cm,
            apply_errors: self.apply_errors.get(),
        }
    }

    /// Register the filestore's counters into a cluster metric registry:
    /// apply-path counters, throttle waits and metadata-cache hit/miss
    /// under `<prefix>.<field>` (e.g. `osd0.fs.txns_applied`,
    /// `osd0.fs.throttle.waits`, `osd0.fs.cache_hits`).
    pub fn register_metrics(&self, m: &Metrics, prefix: &str) {
        let fields: [(&str, &Counter); 5] = [
            ("txns_applied", &self.txns_applied),
            ("data_bytes", &self.data_bytes),
            ("meta_reads", &self.meta_reads),
            ("hints_skipped", &self.hints_skipped),
            ("apply_errors", &self.apply_errors),
        ];
        for (name, cell) in fields {
            m.register_counter(format!("{prefix}.{name}"), cell);
        }
        self.throttle
            .register_into(m, &format!("{prefix}.throttle"));
        self.cache.register_into(m, prefix);
    }

    /// Register the backing KV database's counters under `<kv_prefix>`
    /// (e.g. `osd0.kv.wal_bytes`); kept separate from the filestore's own
    /// prefix because write amplification is a KV-level measure.
    pub fn register_kv_metrics(&self, m: &Metrics, kv_prefix: &str) {
        self.kv.register_metrics(m, kv_prefix);
    }

    /// The KV DB (write-amplification stats for the §3.4 analysis).
    pub fn kv_stats(&self) -> afc_kvstore::DbStats {
        self.kv.stats()
    }

    /// The simulated filesystem (syscall counters).
    pub fn fs(&self) -> &Arc<SimFs> {
        &self.fs
    }

    /// The configured profile.
    pub fn profile(&self) -> TxnProfile {
        self.cfg.profile
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        self.throttle.close();
        // Closing the channels stops the workers once drained.
        self.shards.clear();
        for h in self.workers.drain(..) {
            if h.thread().id() != std::thread::current().id() {
                let _ = h.join();
            }
        }
    }
}

/// Consult the attached fault registry (if any) at `{base}.{point}`.
/// `Error` and `Torn` both fail the apply; `Delay` stalls the worker;
/// `Drop`/`Duplicate` have no meaning here and are ignored.
fn check_apply_fault(ctx: &ApplyCtx, point: &str) -> Result<()> {
    let Some((reg, site)) = ctx.faults.get() else {
        return Ok(());
    };
    match reg.check_io(site, point) {
        None | Some(FaultKind::Drop) | Some(FaultKind::Duplicate) => Ok(()),
        Some(FaultKind::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(FaultKind::Error) | Some(FaultKind::Torn) => Err(AfcError::Io(format!(
            "injected apply fault at {site}.{point}"
        ))),
    }
}

fn apply_txn(ctx: &ApplyCtx, txn: Transaction) -> Result<()> {
    // Fail before any op touches state: the clean "apply never started"
    // fault. Recovery just re-applies the journaled transaction.
    check_apply_fault(ctx, "apply")?;
    let lightweight = ctx.cfg.profile == TxnProfile::Lightweight;
    let txn = if lightweight { txn.dedup() } else { txn };
    // LWT: FD cache (first open wins) and one KV batch for the whole txn.
    let mut opened: HashSet<String> = HashSet::new();
    let mut batch = WriteBatch::new();
    let small_txn = txn.data_bytes() < ctx.cfg.small_write_threshold;
    for (ops_done, op) in txn.ops().iter().enumerate() {
        if ops_done > 0 {
            // The dirty fault: some ops already hit the store. Surfaced so
            // the caller keeps the journal entry and re-applies after
            // recovery (applies are idempotent by construction).
            check_apply_fault(ctx, "mid_apply")?;
        }
        match op {
            TxOp::Touch { object } => {
                ensure_open(ctx, &mut opened, object, lightweight)?;
            }
            TxOp::Write {
                object,
                offset,
                data,
            } => {
                ensure_open(ctx, &mut opened, object, lightweight)?;
                // Metadata read-modify-write (community) or cache (LWT).
                let mut meta = read_meta_for_write(ctx, object, lightweight)?;
                ctx.fs.write(object, *offset, data)?;
                ctx.data_bytes.add(data.len() as u64);
                meta.size = meta.size.max(offset + data.len() as u64);
                meta.version += 1;
                let encoded = encode_meta(&meta);
                if lightweight {
                    batch.put(meta_key(object), encoded);
                    ctx.cache.put(object, meta);
                } else {
                    // Separate synchronous-ish KV commit + xattr write.
                    ctx.kv
                        .put(meta_key(object), encoded.clone(), WriteOptions::async_())?;
                    ctx.fs.setxattr(object, "_", encoded)?;
                }
            }
            TxOp::Truncate { object, size } => {
                ensure_open(ctx, &mut opened, object, lightweight)?;
                ctx.fs.truncate(object, *size)?;
                let mut meta = read_meta_for_write(ctx, object, lightweight)?;
                meta.size = *size;
                meta.version += 1;
                let encoded = encode_meta(&meta);
                if lightweight {
                    batch.put(meta_key(object), encoded);
                    ctx.cache.put(object, meta);
                } else {
                    ctx.kv
                        .put(meta_key(object), encoded, WriteOptions::async_())?;
                }
            }
            TxOp::Remove { object } => {
                ctx.fs.unlink(object)?;
                ctx.cache.invalidate(object);
                if lightweight {
                    batch.delete(meta_key(object));
                } else {
                    ctx.kv.delete(meta_key(object), WriteOptions::async_())?;
                }
            }
            TxOp::SetAttrs { object, attrs } => {
                if lightweight {
                    // §3.4: attrs ride the batched KV insert instead of
                    // per-attr setxattr syscalls + inode writes.
                    for (name, value) in attrs {
                        batch.put(attr_key(object, name), value.clone());
                    }
                } else {
                    ensure_open(ctx, &mut opened, object, lightweight)?;
                    for (name, value) in attrs {
                        ctx.fs.setxattr(object, name, value.clone())?;
                    }
                }
            }
            TxOp::OmapSetKeys { object, keys } => {
                if lightweight {
                    for (k, v) in keys {
                        batch.put(omap_key(object, k), v.clone());
                    }
                } else {
                    // One KV commit per key — the pre-batching behaviour.
                    for (k, v) in keys {
                        ctx.kv
                            .put(omap_key(object, k), v.clone(), WriteOptions::async_())?;
                    }
                }
            }
            TxOp::OmapRmKeys { object, keys } => {
                if lightweight {
                    for k in keys {
                        batch.delete(omap_key(object, k));
                    }
                } else {
                    for k in keys {
                        ctx.kv.delete(omap_key(object, k), WriteOptions::async_())?;
                    }
                }
            }
            TxOp::SetAllocHint { object } => {
                if lightweight && small_txn {
                    ctx.hints_skipped.inc();
                } else {
                    ensure_open(ctx, &mut opened, object, lightweight)?;
                    ctx.fs.fallocate_hint(object)?;
                }
            }
        }
    }
    if !batch.is_empty() {
        ctx.kv.write_batch(&batch, WriteOptions::async_())?;
    }
    ctx.txns_applied.inc();
    Ok(())
}

fn ensure_open(
    ctx: &ApplyCtx,
    opened: &mut HashSet<String>,
    object: &str,
    lightweight: bool,
) -> Result<()> {
    if lightweight {
        if opened.insert(object.to_string()) {
            ctx.fs.open_create(object)?;
        }
        Ok(())
    } else {
        // Community path re-opens for every op.
        ctx.fs.open_create(object)
    }
}

/// The §3.4 metadata read: community always reads meta back from storage
/// (KV probe + xattr fetch → device reads → flash read/write interference);
/// LWT consults the write-through cache and only reads on a cold miss.
fn read_meta_for_write(ctx: &ApplyCtx, object: &str, lightweight: bool) -> Result<ObjectMeta> {
    if lightweight {
        if let Some(m) = ctx.cache.get(object) {
            return Ok(m);
        }
    }
    ctx.meta_reads.inc();
    let from_kv = ctx.kv.get(&meta_key(object))?.and_then(|v| decode_meta(&v));
    if !lightweight {
        // xattr fetch (device read) — part of the community RMW.
        let _ = ctx.fs.getxattr(object, "_")?;
    }
    let meta = from_kv.unwrap_or_default();
    if lightweight {
        ctx.cache.put(object, meta.clone());
    }
    Ok(meta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afc_device::{Nvram, NvramConfig, Ssd, SsdConfig};

    fn nvram_store(cfg: FileStoreConfig) -> Arc<FileStore> {
        FileStore::new(Arc::new(Nvram::new(NvramConfig::pmc_8g())), cfg).expect("open filestore")
    }

    fn write_txn(object: &str, n: usize, with_hint: bool) -> Transaction {
        let mut t = Transaction::new();
        t.push(TxOp::Touch {
            object: object.into(),
        });
        if with_hint {
            t.push(TxOp::SetAllocHint {
                object: object.into(),
            });
        }
        t.push(TxOp::Write {
            object: object.into(),
            offset: 0,
            data: Bytes::from(vec![7u8; n]),
        });
        t.push(TxOp::OmapSetKeys {
            object: format!("pgmeta_{object}"),
            keys: vec![(Bytes::from_static(b"pglog.1"), Bytes::from(vec![1u8; 100]))],
        });
        t.push(TxOp::SetAttrs {
            object: object.into(),
            attrs: vec![("snapset".into(), Bytes::from_static(b"{}"))],
        });
        t
    }

    #[test]
    fn apply_roundtrip_community() {
        let fs = nvram_store(FileStoreConfig::community());
        fs.apply_sync(write_txn("obj", 4096, true)).unwrap();
        assert_eq!(fs.read("obj", 0, 4096).unwrap(), vec![7u8; 4096]);
        let meta = fs.stat("obj").unwrap();
        assert_eq!(meta.size, 4096);
        assert_eq!(meta.version, 1);
        assert_eq!(
            fs.omap_get("pgmeta_obj", b"pglog.1")
                .unwrap()
                .unwrap()
                .len(),
            100
        );
        assert!(fs.getattr("obj", "snapset").unwrap().is_some());
        assert_eq!(fs.stats().txns_applied, 1);
    }

    #[test]
    fn apply_roundtrip_lightweight() {
        let fs = nvram_store(FileStoreConfig::lightweight());
        fs.apply_sync(write_txn("obj", 4096, true)).unwrap();
        assert_eq!(fs.read("obj", 0, 4096).unwrap(), vec![7u8; 4096]);
        assert_eq!(fs.stat("obj").unwrap().size, 4096);
        assert_eq!(fs.stats().hints_skipped, 1, "small-write hint not skipped");
        assert!(!fs.fs().alloc_hint("obj").unwrap());
    }

    #[test]
    fn lightweight_uses_fewer_syscalls_and_kv_commits() {
        let comm = nvram_store(FileStoreConfig::community());
        let lwt = nvram_store(FileStoreConfig::lightweight());
        for i in 0..50 {
            comm.apply_sync(write_txn("obj", 4096 + i, true)).unwrap();
            lwt.apply_sync(write_txn("obj", 4096 + i, true)).unwrap();
        }
        let sys_comm: u64 = [
            "sys.open",
            "sys.stat",
            "sys.setxattr",
            "sys.fallocate",
            "sys.getxattr",
        ]
        .iter()
        .map(|s| comm.fs().counters().get(s))
        .sum();
        let sys_lwt: u64 = [
            "sys.open",
            "sys.stat",
            "sys.setxattr",
            "sys.fallocate",
            "sys.getxattr",
        ]
        .iter()
        .map(|s| lwt.fs().counters().get(s))
        .sum();
        assert!(sys_lwt * 2 < sys_comm, "lwt={sys_lwt} comm={sys_comm}");
        assert!(
            lwt.kv_stats().commits * 2 <= comm.kv_stats().commits,
            "lwt={} comm={}",
            lwt.kv_stats().commits,
            comm.kv_stats().commits
        );
    }

    #[test]
    fn community_rereads_metadata_lwt_caches() {
        let comm = nvram_store(FileStoreConfig::community());
        let lwt = nvram_store(FileStoreConfig::lightweight());
        for _ in 0..20 {
            comm.apply_sync(write_txn("obj", 4096, false)).unwrap();
            lwt.apply_sync(write_txn("obj", 4096, false)).unwrap();
        }
        assert_eq!(comm.stats().meta_reads, 20);
        assert_eq!(lwt.stats().meta_reads, 1, "only the cold miss");
        assert!(lwt.stats().cache_hits >= 19);
    }

    #[test]
    fn version_advances_per_write() {
        let fs = nvram_store(FileStoreConfig::lightweight());
        for _ in 0..5 {
            fs.apply_sync(write_txn("o", 100, false)).unwrap();
        }
        assert_eq!(fs.stat("o").unwrap().version, 5);
    }

    #[test]
    fn remove_clears_everything() {
        let fs = nvram_store(FileStoreConfig::lightweight());
        fs.apply_sync(write_txn("o", 128, false)).unwrap();
        let mut t = Transaction::new();
        t.push(TxOp::Remove { object: "o".into() });
        fs.apply_sync(t).unwrap();
        assert!(!fs.exists("o"));
        assert!(fs.stat("o").is_err());
    }

    #[test]
    fn truncate_updates_meta() {
        let fs = nvram_store(FileStoreConfig::lightweight());
        fs.apply_sync(write_txn("o", 1000, false)).unwrap();
        let mut t = Transaction::new();
        t.push(TxOp::Truncate {
            object: "o".into(),
            size: 10,
        });
        fs.apply_sync(t).unwrap();
        assert_eq!(fs.stat("o").unwrap().size, 10);
        assert_eq!(fs.read("o", 0, 100).unwrap().len(), 10);
    }

    #[test]
    fn omap_scan_and_rm() {
        let fs = nvram_store(FileStoreConfig::lightweight());
        let mut t = Transaction::new();
        t.push(TxOp::OmapSetKeys {
            object: "meta".into(),
            keys: (0..5)
                .map(|i| (Bytes::from(format!("k{i}")), Bytes::from(format!("v{i}"))))
                .collect(),
        });
        fs.apply_sync(t).unwrap();
        assert_eq!(fs.omap_scan("meta").unwrap().len(), 5);
        let mut t = Transaction::new();
        t.push(TxOp::OmapRmKeys {
            object: "meta".into(),
            keys: vec![Bytes::from_static(b"k2")],
        });
        fs.apply_sync(t).unwrap();
        let left = fs.omap_scan("meta").unwrap();
        assert_eq!(left.len(), 4);
        assert!(fs.omap_get("meta", b"k2").unwrap().is_none());
    }

    #[test]
    fn throttle_blocks_when_queue_full() {
        // Slow SSD + queue of 2: the third queue_transaction must wait.
        let dev = Arc::new(Ssd::new(SsdConfig {
            jitter: 0.0,
            ..SsdConfig::sata3()
        }));
        let cfg = FileStoreConfig {
            queue_max_ops: 2,
            apply_threads: 1,
            ..FileStoreConfig::community()
        };
        let fs = FileStore::new(dev, cfg).expect("open filestore");
        for i in 0..12 {
            fs.queue_transaction(
                write_txn(&format!("o{i}"), 32 * 1024, true),
                Box::new(|r| r.unwrap()),
            )
            .unwrap();
        }
        fs.wait_idle();
        let s = fs.stats();
        assert!(s.throttle_waits > 0, "queue never filled: {s:?}");
        assert_eq!(s.txns_applied, 12);
    }

    #[test]
    fn queue_transaction_async_completion() {
        let fs = nvram_store(FileStoreConfig::lightweight());
        let (tx, rx) = crossbeam::channel::bounded(1);
        fs.queue_transaction(
            write_txn("o", 64, false),
            Box::new(move |r| {
                tx.send(r).unwrap();
            }),
        )
        .unwrap();
        rx.recv().unwrap().unwrap();
        assert_eq!(fs.queue_len(), 0);
    }

    #[test]
    fn injected_apply_fault_surfaces_and_counts() {
        use afc_common::faults::{FaultRegistry, FaultSpec};
        let fs = nvram_store(FileStoreConfig::lightweight());
        let reg = Arc::new(FaultRegistry::new());
        fs.attach_faults(Arc::clone(&reg), "fs0");
        reg.install(FaultSpec::new(
            "fs0.apply",
            afc_common::faults::FaultKind::Error,
        ));
        let err = fs.apply_sync(write_txn("o", 64, false)).unwrap_err();
        assert_eq!(err.kind(), "io");
        assert_eq!(fs.stats().apply_errors, 1);
        assert_eq!(fs.stats().txns_applied, 0);
        // One-shot spec is exhausted: the retry applies cleanly.
        fs.apply_sync(write_txn("o", 64, false)).unwrap();
        assert_eq!(fs.stats().txns_applied, 1);
        assert_eq!(reg.hits("fs0.apply"), 1);
    }

    #[test]
    fn mid_apply_fault_leaves_reapplicable_state() {
        use afc_common::faults::{FaultKind, FaultRegistry, FaultSpec};
        let fs = nvram_store(FileStoreConfig::lightweight());
        let reg = Arc::new(FaultRegistry::new());
        fs.attach_faults(Arc::clone(&reg), "fs0");
        reg.install(FaultSpec::new("fs0.mid_apply", FaultKind::Error));
        assert!(fs.apply_sync(write_txn("o", 64, false)).is_err());
        // Some ops landed, some didn't. Re-applying the journaled txn in
        // full is the recovery contract and must converge.
        fs.apply_sync(write_txn("o", 64, false)).unwrap();
        assert_eq!(fs.read("o", 0, 64).unwrap(), vec![7u8; 64]);
        assert_eq!(fs.stat("o").unwrap().size, 64);
    }

    #[test]
    fn crash_volatile_preserves_synced_state() {
        let fs = nvram_store(FileStoreConfig::lightweight());
        fs.apply_sync(write_txn("o", 128, false)).unwrap();
        fs.sync().unwrap();
        fs.crash_volatile().unwrap();
        assert_eq!(fs.read("o", 0, 128).unwrap().len(), 128);
        assert_eq!(fs.stat("o").unwrap().size, 128);
    }

    #[test]
    fn list_objects_includes_pgmeta() {
        let fs = nvram_store(FileStoreConfig::lightweight());
        fs.apply_sync(write_txn("a", 10, false)).unwrap();
        let objs = fs.list_objects();
        assert!(objs.contains(&"a".to_string()));
    }
}
