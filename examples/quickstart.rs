//! Quickstart: bring up an all-flash cluster, store objects, use a block
//! image, inspect statistics.
//!
//! Run: `cargo run --release --example quickstart`

use afcstore::common::{BlockTarget, GIB, MIB};
use afcstore::{Cluster, DeviceProfile, OsdTuning};

fn main() -> afcstore::common::Result<()> {
    // A 2-node demo cluster with the paper's optimized (AFCeph) tuning:
    // per node one NVRAM journal card and one RAID-0 flash set per OSD.
    let cluster = Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .pg_num(64)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .build()?;
    println!(
        "cluster up: {} OSDs, epoch {}",
        cluster.osds().len(),
        cluster.monitor().epoch()
    );

    // --- Object API (RADOS-style) ------------------------------------
    let client = cluster.client()?;
    client.write_object("greeting", 0, b"hello, flash")?;
    let data = client.read_object("greeting", 0, 12)?;
    println!("object read back: {}", String::from_utf8_lossy(&data));
    println!("object size: {} bytes", client.stat_object("greeting")?);

    // --- Block API (RBD-style image) ----------------------------------
    let img = cluster.create_image("vm0", GIB)?;
    let block = vec![0xabu8; 4096];
    img.write_at(0, &block)?;
    img.write_at(4 * MIB - 2048, &block)?; // crosses an object boundary
    assert_eq!(img.read_at(4 * MIB - 2048, 4096)?, block);
    println!("image I/O ok ({} byte objects)", img.object_size());

    // --- Introspection -------------------------------------------------
    cluster.quiesce();
    for (id, s) in cluster.osd_stats() {
        if s.client_ops > 0 || s.repops > 0 {
            println!(
                "{id}: {} client ops ({} writes, {} reads), {} repops, journal avg batch {:.1}",
                s.client_ops,
                s.writes,
                s.reads,
                s.repops,
                s.journal.avg_batch()
            );
        }
    }

    // --- Metrics snapshot ----------------------------------------------
    // Every subsystem registers into one cluster-wide registry; a snapshot
    // is a stable name → value tree (see DESIGN.md "Observability").
    let snap = cluster.metrics_snapshot();
    println!(
        "metrics: {} series; osd0 data SSDs wrote {} bytes, node0 journal committed {} entries",
        snap.len(),
        snap.counter("osd0.data.bytes_written").unwrap_or(0),
        snap.counter("node0.journal.commits").unwrap_or(0),
    );
    // Write-path stage histograms live under `osdN.stage.*`; show the
    // journal-commit stage of whichever OSD served the most traffic.
    if let Some((id, h)) = snap
        .iter()
        .filter_map(|(id, v)| match v {
            afcstore::common::MetricValue::Histogram(h)
                if id.name().ends_with(".stage.journal") =>
            {
                Some((id, h))
            }
            _ => None,
        })
        .max_by_key(|(_, h)| h.count)
    {
        println!(
            "{}: p50 {}us p99 {}us over {} sampled writes",
            id.name(),
            h.p50_us(),
            h.p99_us(),
            h.count
        );
    }
    // The whole snapshot also renders in Prometheus text format:
    let prom = snap.to_prometheus();
    println!("prometheus export: {} lines", prom.lines().count());

    cluster.shutdown();
    Ok(())
}
