//! AFCeph vs a SolidFire-style dedup store, in miniature (§4.4).
//!
//! Shows the architectural trade the paper measures: the dedup store wins
//! when content repeats (and stays strong at 4K random), but its fixed
//! 4 KB chunking shatters sequential I/O while the Ceph-style store
//! streams it.
//!
//! Run: `cargo run --release --example solidfire_compare`

use afcstore::common::{BlockTarget, MIB};
use afcstore::solidfire::{SfCluster, SfConfig};
use afcstore::workload::{JobSpec, Rw};
use afcstore::{Cluster, DeviceProfile, OsdTuning};
use std::time::{Duration, Instant};

fn main() -> afcstore::common::Result<()> {
    // --- AFCeph image ---------------------------------------------------
    let cluster = Cluster::builder()
        .nodes(2)
        .osds_per_node(2)
        .replication(2)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::sustained())
        .build()?;
    let img = cluster.create_image("vm0", 64 * MIB)?;

    // --- SolidFire volume ------------------------------------------------
    let sf = SfCluster::new(SfConfig {
        nodes: 2,
        ssds_per_node: 3,
        ..SfConfig::paper()
    })?;
    let vol = sf.volume("vol0", 64 * MIB)?;

    // Prefill both with the same unique-per-chunk content.
    let mut buf = vec![0u8; MIB as usize];
    for (j, b) in buf.iter_mut().enumerate() {
        *b = (j / 7) as u8 ^ (j % 251) as u8;
    }
    for target in [&img as &dyn BlockTarget, &vol as &dyn BlockTarget] {
        let mut off = 0;
        while off + MIB <= target.size() {
            target.write_at(off, &buf)?;
            off += MIB;
        }
    }
    sf.quiesce();
    cluster.quiesce();

    // SolidFire's pipeline is deep (iSCSI + dual replication + dedup): it
    // needs offered parallelism, exactly like the paper's VM fleets. Use a
    // queue depth of 8 for both systems.
    let spec = |rw, bs: u64| {
        JobSpec::new(rw)
            .bs(bs)
            .iodepth(8)
            .runtime(Duration::from_secs(2))
    };
    println!("single-volume comparison (fleet-scale, where SolidFire's deep");
    println!("pipeline overlaps and leads 4K random writes, is Figure 11):");
    println!("{:24} {:>10} {:>12}", "workload", "afceph", "solidfire");
    for (name, rw, bs, seq) in [
        ("4k random write", Rw::RandWrite, 4096, false),
        ("32k random write", Rw::RandWrite, 32 << 10, false),
        ("4k random read", Rw::RandRead, 4096, false),
        ("1m sequential read", Rw::SeqRead, MIB, true),
        ("1m sequential write", Rw::SeqWrite, MIB, true),
    ] {
        let a = afcstore::workload::run(&spec(rw, bs), &img);
        let s = afcstore::workload::run(&spec(rw, bs), &vol);
        if seq {
            println!(
                "{name:24} {:>7.0} MiB/s {:>9.0} MiB/s",
                a.mibps(),
                s.mibps()
            );
        } else {
            println!("{name:24} {:>7.0} IOPS  {:>9.0} IOPS", a.iops(), s.iops());
        }
    }

    // Dedup in action: write the same block everywhere, then check stats.
    let before = sf.stats();
    let t0 = Instant::now();
    let same = vec![0x11u8; 4096];
    for i in 0..512 {
        vol.write_at(i * 4096, &same)?;
    }
    let st = sf.stats();
    println!(
        "\ndedup demo: 512 identical 4K writes in {:?} → {} chunk copies stored (1 unique × RF=2), {} dedup hits",
        t0.elapsed(),
        st.dedup_misses - before.dedup_misses,
        st.dedup_hits - before.dedup_hits,
    );
    cluster.shutdown();
    Ok(())
}
