//! The paper's motivating scenario: VM block storage on all-flash.
//!
//! Brings up the same cluster twice — community tuning vs AFCeph — runs a
//! fleet of "VMs" (one RBD image + FIO job each) doing 4K random writes
//! and reads, and prints the side-by-side comparison with the internal
//! counters that explain the difference.
//!
//! Run: `cargo run --release --example vm_workload`

use afcstore::common::{BlockTarget, Table};
use afcstore::workload::{JobSpec, Rw};
use afcstore::{Cluster, DeviceProfile, OsdTuning, RbdImage};
use std::sync::Arc;
use std::time::Duration;

const VMS: usize = 8;
const IMAGE: u64 = 64 << 20;

fn fleet(cluster: &Cluster) -> Vec<Arc<RbdImage>> {
    let images: Vec<Arc<RbdImage>> = (0..VMS)
        .map(|i| Arc::new(cluster.create_image(&format!("vm{i}"), IMAGE).unwrap()))
        .collect();
    // Lay the images out (and warm the connections) before measuring.
    std::thread::scope(|s| {
        for img in &images {
            s.spawn(move || {
                let buf = vec![0u8; 1 << 20];
                let mut off = 0;
                while off + buf.len() as u64 <= BlockTarget::size(img.as_ref()) {
                    img.write_at(off, &buf).unwrap();
                    off += buf.len() as u64;
                }
            });
        }
    });
    cluster.quiesce();
    images
}

fn run(images: &[Arc<RbdImage>], rw: Rw) -> afcstore::workload::Report {
    let spec = JobSpec::new(rw)
        .bs(4096)
        .iodepth(2)
        .runtime(Duration::from_secs(3));
    let mut reports = Vec::new();
    std::thread::scope(|s| {
        let hs: Vec<_> = images
            .iter()
            .map(|img| {
                let spec = spec.clone();
                let img = Arc::clone(img);
                s.spawn(move || afcstore::workload::run(&spec, img.as_ref()))
            })
            .collect();
        for h in hs {
            reports.push(h.join().unwrap());
        }
    });
    let mut merged = reports.pop().unwrap();
    for r in reports {
        merged.lat.merge(&r.lat);
        merged.ops += r.ops;
        merged.runtime = merged.runtime.max(r.runtime);
    }
    merged
}

fn main() {
    let mut table = Table::new(vec!["config", "pattern", "IOPS", "mean lat", "p99"]);
    for (name, tuning) in [
        ("community", OsdTuning::community()),
        ("afceph", OsdTuning::afceph()),
    ] {
        let cluster = Cluster::builder()
            .nodes(4)
            .osds_per_node(2)
            .replication(2)
            .tuning(tuning)
            .devices(DeviceProfile::sustained())
            .build()
            .unwrap();
        let images = fleet(&cluster);
        for rw in [Rw::RandWrite, Rw::RandRead] {
            let r = run(&images, rw);
            table.row(vec![
                name.to_string(),
                rw.name().to_string(),
                format!("{:.0}", r.iops()),
                format!("{:.2}ms", r.mean_lat().as_secs_f64() * 1e3),
                format!("{:.2}ms", r.p99().as_secs_f64() * 1e3),
            ]);
        }
        // The counters behind the story.
        let stats = cluster.osd_stats();
        let sum =
            |f: &dyn Fn(&afcstore::OsdStats) -> u64| stats.iter().map(|(_, s)| f(s)).sum::<u64>();
        println!(
            "[{name}] pg-lock wait {} ms | blocking-log wait {} ms | meta reads {} | throttle blocks {}",
            sum(&|s| s.pg_lock_wait_us) / 1000,
            sum(&|s| s.log_wait_us) / 1000,
            sum(&|s| s.filestore.meta_reads),
            sum(&|s| s.filestore.throttle_waits),
        );
        cluster.shutdown();
    }
    println!();
    table.print();
}
