//! Failure handling: OSD loss, CRUSH remapping, journal replay.
//!
//! Demonstrates the reliability machinery the paper's optimizations were
//! careful not to break (§3.1: "we did not revise the entire PG lock
//! scheme since it is the basis of the recovery system"):
//!
//! 1. writes land on a healthy cluster;
//! 2. an OSD is marked down — CRUSH remaps its PGs and clients retry
//!    misdirected ops against the refreshed map;
//! 3. an OSD "crashes" with journal entries not yet applied to the
//!    filestore — `replay_journal` re-applies them.
//!
//! Run: `cargo run --release --example failure_recovery`

use afcstore::common::OsdId;
use afcstore::{Cluster, DeviceProfile, OsdTuning};

fn main() -> afcstore::common::Result<()> {
    let cluster = Cluster::builder()
        .nodes(3)
        .osds_per_node(2)
        .replication(2)
        .pg_num(64)
        .tuning(OsdTuning::afceph())
        .devices(DeviceProfile::clean())
        .build()?;
    let client = cluster.client()?;

    // Phase 1: healthy writes.
    for i in 0..32 {
        client.write_object(&format!("obj{i}"), 0, format!("payload-{i}").as_bytes())?;
    }
    println!(
        "phase 1: 32 objects written, epoch {}",
        cluster.monitor().epoch()
    );

    // Phase 2: kill an OSD; acked data must stay readable via replicas,
    // and new writes must remap around the dead OSD.
    let victim = OsdId(0);
    cluster.monitor().mark_down(victim);
    println!(
        "phase 2: {victim} marked down, epoch {}",
        cluster.monitor().epoch()
    );
    let mut reread = 0;
    for i in 0..32 {
        let data = client.read_object(&format!("obj{i}"), 0, 10)?;
        assert!(data.starts_with(b"payload-"), "corrupt read after failure");
        reread += 1;
    }
    println!("  all {reread} objects readable after failure");
    for i in 32..48 {
        client.write_object(&format!("obj{i}"), 0, b"post-failure")?;
    }
    println!("  16 new objects written around the dead OSD");
    for pg_seq in 0..64 {
        let pg = afcstore::common::PgId {
            pool: cluster.pool(),
            seq: pg_seq,
        };
        let acting = cluster.monitor().map().pg_acting(pg)?;
        assert!(
            !acting.contains(&victim),
            "pg {pg} still maps to the dead OSD"
        );
    }
    println!("  no PG maps to {victim} anymore");

    // Phase 3: journal replay. Entries committed to NVRAM but not yet
    // applied to the filestore survive a daemon crash; replay is
    // idempotent. (Re-adding the failed OSD would additionally need
    // backfill — data movement to the rejoining OSD — which is out of
    // scope; the cluster keeps running degraded.)
    let osd = cluster.osd(OsdId(1)).expect("osd.1 exists");
    let replayed = osd.replay_journal()?;
    println!("phase 3: osd.1 replayed {replayed} pending journal entries (idempotent)");
    // Data still intact after (redundant) replay.
    for i in 0..48 {
        let data = client.read_object(&format!("obj{i}"), 0, 8)?;
        assert!(!data.is_empty());
    }
    println!("  all data verified after replay");

    cluster.shutdown();
    Ok(())
}
